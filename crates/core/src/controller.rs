//! The FractOS Controller: the trusted OS layer (§3, §4).
//!
//! Controllers implement every trusted mechanism — capability tables, RPC
//! routing, address translation, memory copies, revocation, monitors and
//! failure translation. They run on host CPUs or SmartNICs as isolated
//! actors; Processes and peer Controllers reach them only through messages
//! on the simulated fabric.
//!
//! Protocol summary (owner-centric, §3.5):
//!
//! * every object lives at exactly one Controller (its owner);
//! * derivation (`memory_diminish`, Request refinement, `cap_create_revtree`)
//!   executes at the owner, keeping revocation subtrees local;
//! * delegation is registered at the owner with a single message, minting a
//!   separately revocable child when a `monitor_delegate` is armed;
//! * `request_invoke` is forwarded to the Request's owner, which is always
//!   the provider's Controller;
//! * revocation is an immediate local invalidation at the owner plus an
//!   out-of-critical-path cleanup broadcast;
//! * data movement (`memory_copy`) is one-sided RDMA through memory windows
//!   checked at access time — revoking memory invalidates its window at the
//!   owner, so no delegation tracking is needed.

use std::collections::{BTreeMap, HashMap, HashSet};

use fractos_cap::{CapRef, CapSpace, Cid, ControllerAddr, MonitorEvent, ObjectTable, Watcher};
use fractos_net::{ComputeDomain, Endpoint, Fabric, NetParams, Payload, SendOutcome, TrafficClass};
use fractos_sim::{Actor, Ctx, Msg, Shared, SimDuration, SimTime, SpanKind, TraceCtx};

use crate::directory::Directory;
use crate::memstore::MemoryStore;
use crate::messages::{
    syscall_msg_size, CtrlMsg, CtrlToProc, DeriveOp, MonitorKind, PeerOp, ProcMsg,
};
use crate::retry::{DedupFilter, SeqGen};
use crate::types::{
    Arg, CapArg, FosError, IncomingRequest, MemoryDesc, MonitorCb, ObjPayload, ProcId, RequestDesc,
    Syscall, SyscallResult,
};

/// Delay before the revocation cleanup broadcast goes out (§3.5: "outside
/// the critical path").
pub const CLEANUP_DELAY: SimDuration = SimDuration::from_micros(100);

fn peer_op_name(op: &PeerOp) -> &'static str {
    match op {
        PeerOp::Invoke { .. } => "invoke",
        PeerOp::InvokeAck { .. } => "invoke-ack",
        PeerOp::Derive { .. } => "derive",
        PeerOp::DeriveAck { .. } => "derive-ack",
        PeerOp::Delegate { .. } => "delegate",
        PeerOp::DelegateAck { .. } => "delegate-ack",
        PeerOp::Revoke { .. } => "revoke",
        PeerOp::RevokeAck { .. } => "revoke-ack",
        PeerOp::Monitor { .. } => "monitor",
        PeerOp::MonitorAck { .. } => "monitor-ack",
        PeerOp::MonitorEvent { .. } => "monitor-event",
        PeerOp::Cleanup { .. } => "cleanup",
        PeerOp::FailProcess { .. } => "fail-process",
        PeerOp::KvPut { .. } => "kv-put",
        PeerOp::KvPutAck { .. } => "kv-put-ack",
        PeerOp::KvGet { .. } => "kv-get",
        PeerOp::KvGetAck { .. } => "kv-get-ack",
    }
}

/// Values carried by peer acks.
#[derive(Debug)]
enum AckVal {
    None,
    Cap(CapArg),
    Count(u64),
}

type PendingCont =
    Box<dyn FnOnce(&mut ControllerActor, Result<AckVal, FosError>, &mut Ctx<'_>) + Send>;

/// Continuation of a multi-capability delegation fan-in.
type DelegateDone =
    Box<dyn FnOnce(&mut ControllerActor, Result<Vec<CapArg>, FosError>, &mut Ctx<'_>) + Send>;

struct Pending {
    target: ControllerAddr,
    cont: PendingCont,
    /// Trace context active when the awaited op was issued; restored when
    /// the ack (or its timeout/failure verdict) completes, so continuations
    /// stay inside the originating request's span tree.
    tctx: TraceCtx,
}

/// The Controller actor.
pub struct ControllerActor {
    addr: ControllerAddr,
    endpoint: Endpoint,
    domain: ComputeDomain,
    registry: ControllerAddr,
    table: ObjectTable<ObjPayload>,
    // Iterated maps are BTreeMaps so sweep order (revocation fan-out,
    // pending-op failure, KV GC) is deterministic across runs and
    // backends; keyed-only maps below stay hashed.
    spaces: BTreeMap<ProcId, CapSpace>,
    snaps: BTreeMap<(ProcId, Cid), MemoryDesc>,
    dead_procs: HashSet<ProcId>,
    peers_dead: HashSet<ControllerAddr>,
    pending: BTreeMap<u64, Pending>,
    next_token: u64,
    /// Outgoing wire sequence numbers, one stream per Process channel.
    seq_proc: HashMap<ProcId, SeqGen>,
    /// Outgoing wire sequence numbers, one stream per peer channel.
    seq_peer: HashMap<ControllerAddr, SeqGen>,
    /// Duplicate suppression for arriving syscalls, per Process.
    seen_proc: HashMap<ProcId, DedupFilter>,
    /// Duplicate suppression for arriving peer ops, per sender.
    seen_peer: HashMap<ControllerAddr, DedupFilter>,
    kv: BTreeMap<String, CapArg>,
    busy_until: SimTime,
    /// Trace context of the event being handled (causal tracing; `NONE`
    /// outside traces and while span recording is disabled).
    cur: TraceCtx,
    dir: Shared<Directory>,
    fabric: Shared<Fabric>,
    mem: Shared<MemoryStore>,
    dead: bool,
    /// Timestamped capability-revocation milestones from `PeerFailed`
    /// handling: `(dead peer, revoked-at)`. Feeds the MTTR attribution.
    pub peer_revocations: Vec<(ControllerAddr, SimTime)>,
    /// Last pending-op depth published to the telemetry plane; gauges are
    /// emitted only on change so an idle Controller stays silent.
    tele_pending_last: Option<usize>,
}

impl ControllerActor {
    /// Creates a Controller. `registry` names the Controller hosting the
    /// bootstrap key/value service (usually address 0).
    pub fn new(
        addr: ControllerAddr,
        endpoint: Endpoint,
        domain: ComputeDomain,
        registry: ControllerAddr,
        dir: Shared<Directory>,
        fabric: Shared<Fabric>,
        mem: Shared<MemoryStore>,
    ) -> Self {
        ControllerActor {
            addr,
            endpoint,
            domain,
            registry,
            table: ObjectTable::new(addr),
            spaces: BTreeMap::new(),
            snaps: BTreeMap::new(),
            dead_procs: HashSet::new(),
            peers_dead: HashSet::new(),
            pending: BTreeMap::new(),
            next_token: 0,
            seq_proc: HashMap::new(),
            seq_peer: HashMap::new(),
            seen_proc: HashMap::new(),
            seen_peer: HashMap::new(),
            kv: BTreeMap::new(),
            busy_until: SimTime::ZERO,
            cur: TraceCtx::NONE,
            dir,
            fabric,
            mem,
            dead: false,
            peer_revocations: Vec::new(),
            tele_pending_last: None,
        }
    }

    /// This Controller's address.
    pub fn addr(&self) -> ControllerAddr {
        self.addr
    }

    /// Registers a Process as managed by this Controller (testbed wiring).
    pub fn adopt(&mut self, proc: ProcId) {
        self.spaces.insert(proc, CapSpace::new());
    }

    /// Caps the Process's capability space at `quota` slots (§4: "a set
    /// amount of memory for the capability space … can be capped via
    /// quotas"). Only effective before the Process holds capabilities.
    pub fn set_capspace_quota(&mut self, proc: ProcId, quota: usize) {
        if self.spaces.get(&proc).is_some_and(|s| s.is_empty()) {
            self.spaces.insert(proc, CapSpace::with_quota(quota));
        }
    }

    /// Read access to the object table (tests and harnesses).
    pub fn table(&self) -> &ObjectTable<ObjPayload> {
        &self.table
    }

    /// Number of peer operations still awaiting an ack (tests: a drained
    /// run must leave none behind).
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Whether this Controller currently considers `peer` failed (tests:
    /// a healed partition must clear the verdict via `PeerRecovered`).
    pub fn peer_dead(&self, peer: ControllerAddr) -> bool {
        self.peers_dead.contains(&peer)
    }

    /// Live entries in a Process's capability space (tests).
    pub fn capspace_len(&self, proc: ProcId) -> usize {
        self.spaces.get(&proc).map_or(0, |s| s.len())
    }

    /// Registry keys currently live on this Controller (tests).
    pub fn kv_keys(&self) -> Vec<String> {
        self.kv.keys().cloned().collect()
    }

    /// Whether `proc`'s capability space still holds any capability minted
    /// by `owner` (tests: must be false once `owner`'s death epoch stands —
    /// no capability may leak through a dead epoch).
    pub fn holds_cap_of(&self, proc: ProcId, owner: ControllerAddr) -> bool {
        self.spaces
            .get(&proc)
            .is_some_and(|s| s.iter().any(|(_, cap)| cap.ctrl == owner))
    }

    /// Estimated memory footprint of this Controller in bytes, using the
    /// prototype's published numbers (§4): 64 MB of RoCE buffers per
    /// managed Process, 64 MB per connected peer Controller, the capability
    /// spaces, and 24 B per revocation-tree object.
    pub fn memory_footprint(&self) -> u64 {
        const ROCE_PER_PROC: u64 = 64 << 20;
        const ROCE_PER_PEER: u64 = 64 << 20;
        const CAP_ENTRY: u64 = 24; // cid slot + reference
        const REVTREE_OBJ: u64 = 24; // "24 B per revocation tree object"
        let peers = self
            .dir
            .borrow()
            .all_ctrls()
            .into_iter()
            .filter(|&a| a != self.addr)
            .count() as u64;
        let caps: u64 = self.spaces.values().map(|s| s.len() as u64).sum();
        self.spaces.len() as u64 * ROCE_PER_PROC
            + peers * ROCE_PER_PEER
            + caps * CAP_ENTRY
            + self.table.len() as u64 * REVTREE_OBJ
    }

    // ------------------------------------------------------------------
    // Cost model helpers
    // ------------------------------------------------------------------

    /// Charges `cost` of processing on this Controller's (serial) cores and
    /// returns the delay from `now` until the work completes. In
    /// interrupt mode (§4), a Controller that has been idle longer than the
    /// polling window pays the wake-up latency first.
    fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        // Snapshot the three scalars we need instead of cloning the whole
        // params block: this runs on every message a Controller handles.
        let (interrupts, poll_window, wakeup) = {
            let fabric = self.fabric.borrow();
            let p = fabric.params();
            (p.controller_interrupts, p.poll_window, p.interrupt_wakeup)
        };
        let mut start = self.busy_until.max(now);
        if interrupts && now > self.busy_until && now.duration_since(self.busy_until) > poll_window
        {
            start += wakeup;
        }
        let done = start + cost;
        self.busy_until = done;
        done.duration_since(now)
    }

    fn handling(&self) -> SimDuration {
        self.fabric.borrow().params().fractos_handling(self.domain)
    }

    fn invoke_handling(&self) -> SimDuration {
        self.fabric.borrow().params().request_handling(self.domain) / 2
    }

    fn serialize_cost(&self, op: &PeerOp, crossing: bool) -> SimDuration {
        if !crossing {
            return SimDuration::ZERO;
        }
        let fabric = self.fabric.borrow();
        let params = fabric.params();
        match op {
            PeerOp::Invoke { .. } => params.request_serialize(self.domain) / 2,
            _ => params.cap_serialize(self.domain) / 2 * op.cap_count(),
        }
    }

    // ------------------------------------------------------------------
    // Messaging helpers
    // ------------------------------------------------------------------

    fn send_proc(&mut self, ctx: &mut Ctx<'_>, proc: ProcId, msg: CtrlToProc, extra: SimDuration) {
        let seq = self.seq_proc.entry(proc).or_default().next_seq();
        self.transmit_proc(ctx, proc, msg, seq, 0, extra);
    }

    fn transmit_proc(
        &mut self,
        ctx: &mut Ctx<'_>,
        proc: ProcId,
        msg: CtrlToProc,
        seq: u64,
        attempt: u32,
        extra: SimDuration,
    ) {
        let (actor, ep, alive) = {
            let dir = self.dir.borrow();
            let Some(pe) = dir.proc(proc) else { return };
            (pe.actor, pe.endpoint, pe.alive)
        };
        if !alive || self.dead_procs.contains(&proc) {
            return;
        }
        let size = msg.wire_size();
        // Controller-side processing (validation + table work) shows up as
        // a Control span covering the `extra` charge; retransmits reuse the
        // base context restored from the retry message instead of opening a
        // second Control span.
        let base = if attempt == 0 && self.cur.is_some() {
            let label = match &msg {
                CtrlToProc::Reply { .. } => "reply",
                CtrlToProc::Deliver(_) => "deliver",
                CtrlToProc::Monitor(_) => "monitor",
            };
            ctx.span(
                SpanKind::Control,
                label,
                self.cur,
                ctx.now(),
                ctx.now() + extra,
            )
        } else {
            self.cur
        };
        // `extra` is processing time before the message departs; compute
        // the fabric traversal from the departure instant so it does not
        // double-queue behind this operation's own link reservations.
        let depart = ctx.now() + extra;
        let retry = self.fabric.borrow().params().retry;
        let outcome = self.fabric.borrow_mut().try_send_parts(
            depart,
            ctx.rng(),
            self.endpoint,
            ep,
            size,
            TrafficClass::Control,
        );
        match outcome {
            Some((delay, prop)) => {
                let tctx = if base.is_some() {
                    let ser_end = depart + delay.saturating_sub(prop);
                    let s = ctx.span(SpanKind::FabricSer, "ctrl->proc", base, depart, ser_end);
                    ctx.span(
                        SpanKind::FabricProp,
                        "ctrl->proc",
                        s,
                        ser_end,
                        depart + delay,
                    )
                } else {
                    TraceCtx::NONE
                };
                // A delivery slower than one RTO under active faults is
                // presumed lost and re-fired once; the Process's sequence
                // filter absorbs the duplicate (same trace context, no
                // extra spans).
                if attempt == 0 && delay > retry.rto(0) && self.fabric.borrow().has_faults() {
                    let dup = self.fabric.borrow_mut().try_send_parts(
                        depart,
                        ctx.rng(),
                        self.endpoint,
                        ep,
                        size,
                        TrafficClass::Control,
                    );
                    if let Some((d2, _)) = dup {
                        ctx.send_after(
                            extra + d2,
                            actor,
                            ProcMsg::FromCtrl {
                                seq,
                                tctx,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
                ctx.send_after(extra + delay, actor, ProcMsg::FromCtrl { seq, tctx, msg });
            }
            None => {
                if attempt + 1 < retry.max_attempts {
                    if base.is_some() {
                        ctx.span(SpanKind::Fault, "drop", base, depart, depart);
                        ctx.span(
                            SpanKind::Retransmit,
                            "ctrl->proc",
                            base,
                            depart,
                            depart + retry.rto(attempt),
                        );
                    }
                    ctx.schedule_self(
                        extra + retry.rto(attempt),
                        CtrlMsg::RetransmitProc {
                            proc,
                            msg,
                            seq,
                            attempt: attempt + 1,
                            tctx: base,
                        },
                    );
                } else {
                    // Retry budget exhausted: the channel to the Process is
                    // unusable — same §3.6 verdict as a severed channel.
                    self.on_proc_severed(ctx, proc);
                }
            }
        }
    }

    fn reply(
        &mut self,
        ctx: &mut Ctx<'_>,
        proc: ProcId,
        token: u64,
        result: SyscallResult,
        extra: SimDuration,
    ) {
        self.send_proc(ctx, proc, CtrlToProc::Reply { token, result }, extra);
    }

    fn peer_send(&mut self, ctx: &mut Ctx<'_>, to: ControllerAddr, op: PeerOp, extra: SimDuration) {
        let seq = self.seq_peer.entry(to).or_default().next_seq();
        self.transmit_peer(ctx, to, op, seq, 0, extra);
    }

    fn transmit_peer(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: ControllerAddr,
        op: PeerOp,
        seq: u64,
        attempt: u32,
        extra: SimDuration,
    ) {
        if to == self.addr {
            // Loopback peer op (e.g. registry co-located): handle directly
            // after the extra delay. No fabric hop — only a Control span.
            let tctx = if attempt == 0 && self.cur.is_some() {
                ctx.span(
                    SpanKind::Control,
                    peer_op_name(&op),
                    self.cur,
                    ctx.now(),
                    ctx.now() + extra,
                )
            } else {
                self.cur
            };
            let self_actor = ctx.self_id();
            ctx.send_after(
                extra,
                self_actor,
                CtrlMsg::FromPeer {
                    from: to,
                    op,
                    seq,
                    tctx,
                },
            );
            return;
        }
        let (actor, ep, alive) = {
            let dir = self.dir.borrow();
            let Some(ce) = dir.ctrl(to) else { return };
            (ce.actor, ce.endpoint, ce.alive)
        };
        if !alive || self.peers_dead.contains(&to) {
            // Fail any pending continuation waiting on this op's ack.
            self.fail_ops_to(ctx, to);
            return;
        }
        let crossing = ep.node != self.endpoint.node;
        let ser = self.serialize_cost(&op, crossing);
        let size = op.wire_size();
        // Bulk payloads riding the control plane (e.g. large immediates in
        // a refinement) count as data traffic.
        let class = if size > 1024 {
            TrafficClass::Data
        } else {
            TrafficClass::Control
        };
        // Control span covers the peer-op processing charge; retransmits
        // restore the base context from the retry message instead.
        let base = if attempt == 0 && self.cur.is_some() {
            ctx.span(
                SpanKind::Control,
                peer_op_name(&op),
                self.cur,
                ctx.now(),
                ctx.now() + extra,
            )
        } else {
            self.cur
        };
        let depart = ctx.now() + extra + ser;
        let (faults, retry) = {
            let fabric = self.fabric.borrow();
            (fabric.has_faults(), fabric.params().retry)
        };
        // Last-resort ack timeout for request-type ops: covers a lost or
        // abandoned return path that retransmits on this side cannot see.
        if faults && attempt == 0 {
            if let Some(token) = op.ack_token() {
                ctx.schedule_self(retry.ack_timeout, CtrlMsg::AckTimeout { token });
            }
        }
        let outcome = self.fabric.borrow_mut().try_send_parts(
            depart,
            ctx.rng(),
            self.endpoint,
            ep,
            size,
            class,
        );
        match outcome {
            Some((delay, prop)) => {
                // The serialization span folds the CPU (de)serialization
                // cost `ser` into the link-occupancy share of the fabric
                // delay; propagation is the wire share.
                let tctx = if base.is_some() {
                    let ser_end = depart + delay.saturating_sub(prop);
                    let s = ctx.span(
                        SpanKind::FabricSer,
                        "ctrl->ctrl",
                        base,
                        ctx.now() + extra,
                        ser_end,
                    );
                    ctx.span(
                        SpanKind::FabricProp,
                        "ctrl->ctrl",
                        s,
                        ser_end,
                        depart + delay,
                    )
                } else {
                    TraceCtx::NONE
                };
                // Presumed-lost duplicate when delivery is slower than one
                // RTO; the receiver's sequence filter absorbs it.
                if attempt == 0 && delay > retry.rto(0) && faults {
                    let dup = self.fabric.borrow_mut().try_send_parts(
                        depart,
                        ctx.rng(),
                        self.endpoint,
                        ep,
                        size,
                        class,
                    );
                    if let Some((d2, _)) = dup {
                        ctx.send_after(
                            extra + ser + d2,
                            actor,
                            CtrlMsg::FromPeer {
                                from: self.addr,
                                op: op.clone(),
                                seq,
                                tctx,
                            },
                        );
                    }
                }
                ctx.send_after(
                    extra + ser + delay,
                    actor,
                    CtrlMsg::FromPeer {
                        from: self.addr,
                        op,
                        seq,
                        tctx,
                    },
                );
            }
            None => {
                if attempt + 1 < retry.max_attempts {
                    if base.is_some() {
                        ctx.span(SpanKind::Fault, "drop", base, depart, depart);
                        ctx.span(
                            SpanKind::Retransmit,
                            "ctrl->ctrl",
                            base,
                            depart,
                            depart + retry.rto(attempt),
                        );
                    }
                    ctx.schedule_self(
                        extra + ser + retry.rto(attempt),
                        CtrlMsg::RetransmitPeer {
                            to,
                            op,
                            seq,
                            attempt: attempt + 1,
                            tctx: base,
                        },
                    );
                } else {
                    // Retry budget exhausted: every operation pending on
                    // this peer resolves to `ControllerUnreachable` (§3.6).
                    // Only the watchdog may declare the peer dead.
                    self.fail_ops_to(ctx, to);
                }
            }
        }
    }

    fn await_ack(&mut self, target: ControllerAddr, cont: PendingCont) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(
            token,
            Pending {
                target,
                cont,
                tctx: self.cur,
            },
        );
        token
    }

    fn complete_ack(&mut self, ctx: &mut Ctx<'_>, token: u64, result: Result<AckVal, FosError>) {
        if let Some(p) = self.pending.remove(&token) {
            // Run the continuation inside the trace that issued the op —
            // covers acks, ack timeouts and peer-failure verdicts alike.
            self.cur = p.tctx;
            (p.cont)(self, result, ctx);
        }
    }

    fn fail_ops_to(&mut self, ctx: &mut Ctx<'_>, target: ControllerAddr) {
        let tokens: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.target == target)
            .map(|(t, _)| *t)
            .collect();
        for t in tokens {
            self.complete_ack(ctx, t, Err(FosError::ControllerUnreachable));
        }
    }

    // ------------------------------------------------------------------
    // Capability-space helpers
    // ------------------------------------------------------------------

    fn resolve_cid(
        &self,
        proc: ProcId,
        cid: Cid,
    ) -> Result<(CapRef, Option<MemoryDesc>), FosError> {
        let space = self
            .spaces
            .get(&proc)
            .ok_or(FosError::Cap(fractos_cap::CapError::BadCid(cid)))?;
        let cap = space.get(cid)?;
        Ok((cap, self.snaps.get(&(proc, cid)).cloned()))
    }

    fn install_cap(&mut self, proc: ProcId, ca: CapArg) -> Result<Cid, FosError> {
        let space = self.spaces.get_mut(&proc).ok_or(FosError::ProcessFailed)?;
        let cid = space.insert(ca.cap)?;
        if let Some(m) = ca.mem {
            self.snaps.insert((proc, cid), m);
        } else {
            self.snaps.remove(&(proc, cid));
        }
        Ok(cid)
    }

    // ------------------------------------------------------------------
    // Local (owner-side) object operations
    // ------------------------------------------------------------------

    fn snapshot_of(&self, cap: CapRef) -> Option<MemoryDesc> {
        self.table
            .resolve(cap)
            .ok()
            .and_then(|p| p.as_memory().cloned())
    }

    fn do_local_delegate(&mut self, cap: CapRef, to: ProcId) -> Result<CapArg, FosError> {
        self.table.check(cap)?;
        let new_ref = self.table.delegate(cap.object, to.token())?;
        let mem = self.snapshot_of(cap);
        if new_ref != cap {
            // A monitored-delegation child was minted; give it its own
            // memory window so revoking it cuts exactly this delegatee off.
            if let Some(desc) = &mem {
                self.mem.borrow_mut().register_window(new_ref, desc.clone());
            }
        }
        Ok(CapArg { cap: new_ref, mem })
    }

    fn do_local_diminish(
        &mut self,
        cap: CapRef,
        creator: ProcId,
        offset: u64,
        size: u64,
        drop_perms: fractos_cap::Perms,
    ) -> Result<CapArg, FosError> {
        self.table.check(cap)?;
        let src = self
            .table
            .resolve(cap)?
            .as_memory()
            .cloned()
            .ok_or(FosError::WrongObjectKind)?;
        if offset + size > src.size {
            return Err(FosError::OutOfBounds);
        }
        let desc = MemoryDesc {
            proc: src.proc,
            location: src.location,
            addr: src.addr,
            view_off: src.view_off + offset,
            size,
            perms: src.perms.diminish(drop_perms),
        };
        let new_ref = self.table.derive(
            cap.object,
            creator.token(),
            ObjPayload::Memory(desc.clone()),
        )?;
        self.mem.borrow_mut().register_window(new_ref, desc.clone());
        Ok(CapArg {
            cap: new_ref,
            mem: Some(desc),
        })
    }

    fn do_local_revtree(&mut self, cap: CapRef, creator: ProcId) -> Result<CapArg, FosError> {
        self.table.check(cap)?;
        let new_ref = self
            .table
            .create_revtree_node(cap.object, creator.token())?;
        let mem = self.snapshot_of(cap);
        if let Some(desc) = &mem {
            self.mem.borrow_mut().register_window(new_ref, desc.clone());
        }
        Ok(CapArg { cap: new_ref, mem })
    }

    fn do_local_revoke(&mut self, ctx: &mut Ctx<'_>, cap: CapRef) -> Result<u64, FosError> {
        self.table.check(cap)?;
        let outcome = self.table.revoke(cap.object)?;
        let epoch = self.table.epoch();
        {
            let mut mem = self.mem.borrow_mut();
            for id in &outcome.revoked {
                mem.invalidate_window(CapRef {
                    ctrl: self.addr,
                    epoch,
                    object: *id,
                });
            }
        }
        self.dispatch_monitor_events(ctx, &outcome.events);
        // Out-of-critical-path cleanup broadcast: peers drop dangling
        // capabilities referencing the invalidated objects.
        let refs: Vec<CapRef> = outcome
            .revoked
            .iter()
            .map(|id| CapRef {
                ctrl: self.addr,
                epoch,
                object: *id,
            })
            .collect();
        let peers = self.dir.borrow().all_ctrls();
        for peer in peers {
            if peer != self.addr && !self.peers_dead.contains(&peer) {
                self.peer_send(
                    ctx,
                    peer,
                    PeerOp::Cleanup { objs: refs.clone() },
                    CLEANUP_DELAY,
                );
            }
        }
        // Local cleanup of the owner's own bookkeeping.
        self.scrub_capspaces(&refs);
        Ok(outcome.nodes_visited() as u64)
    }

    fn scrub_capspaces(&mut self, revoked: &[CapRef]) {
        let dead: HashSet<CapRef> = revoked.iter().copied().collect();
        for (proc, space) in self.spaces.iter_mut() {
            let victims: Vec<Cid> = space
                .iter()
                .filter(|(_, cap)| dead.contains(cap))
                .map(|(cid, _)| cid)
                .collect();
            for cid in victims {
                let _ = space.remove(cid);
                self.snaps.remove(&(*proc, cid));
            }
        }
        self.kv.retain(|_, ca| !dead.contains(&ca.cap));
    }

    fn dispatch_monitor_events(&mut self, ctx: &mut Ctx<'_>, events: &[MonitorEvent]) {
        for ev in events {
            let (watcher, cb) = match ev {
                MonitorEvent::DelegateDrained(w) => (
                    *w,
                    MonitorCb::DelegateDrained {
                        callback_id: w.callback_id,
                    },
                ),
                MonitorEvent::Receive(w) => (
                    *w,
                    MonitorCb::Receive {
                        callback_id: w.callback_id,
                    },
                ),
            };
            let proc = ProcId(watcher.process.0 as u32);
            let managed_here = self.spaces.contains_key(&proc);
            if managed_here {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h);
                self.send_proc(ctx, proc, CtrlToProc::Monitor(cb), extra);
            } else {
                let ctrl = self.dir.borrow().proc(proc).map(|p| p.ctrl);
                if let Some(ctrl) = ctrl {
                    self.peer_send(
                        ctx,
                        ctrl,
                        PeerOp::MonitorEvent { proc, cb },
                        SimDuration::ZERO,
                    );
                }
            }
        }
    }

    /// Registers delegation of `caps` to Process `to` (local mints inline,
    /// remote owners contacted in parallel), then runs `done` with the
    /// delegated capability arguments in their original order.
    fn delegate_seq(
        &mut self,
        ctx: &mut Ctx<'_>,
        caps: Vec<CapArg>,
        _acc: Vec<CapArg>,
        to: ProcId,
        done: DelegateDone,
    ) {
        let n = caps.len();
        // Shared fan-in state: result slots plus the final continuation.
        type Done = Box<
            dyn FnOnce(&mut ControllerActor, Result<Vec<CapArg>, FosError>, &mut Ctx<'_>) + Send,
        >;
        struct FanIn {
            slots: Vec<Option<CapArg>>,
            outstanding: usize,
            failed: Option<FosError>,
            done: Option<Done>,
        }
        impl FanIn {
            fn settle(state: &Shared<FanIn>, this: &mut ControllerActor, ctx: &mut Ctx<'_>) {
                let finished = {
                    let s = state.borrow();
                    s.outstanding == 0
                };
                if !finished {
                    return;
                }
                let (done, failed, slots) = {
                    let mut s = state.borrow_mut();
                    (s.done.take(), s.failed.take(), std::mem::take(&mut s.slots))
                };
                let Some(done) = done else { return };
                match failed {
                    Some(e) => done(this, Err(e), ctx),
                    // With no recorded failure every slot must be filled; an
                    // empty slot means a delegation ack was lost without an
                    // error, which surfaces as the peer being unreachable
                    // rather than a crash.
                    None => match slots.into_iter().collect::<Option<Vec<_>>>() {
                        Some(filled) => done(this, Ok(filled), ctx),
                        None => done(this, Err(FosError::ControllerUnreachable), ctx),
                    },
                }
            }
        }

        let state = Shared::named(
            "state",
            FanIn {
                slots: vec![None; n],
                outstanding: 0,
                failed: None,
                done: Some(done),
            },
        );

        // First pass: resolve local delegations inline and launch remote
        // ones in parallel.
        for (i, ca) in caps.into_iter().enumerate() {
            if ca.cap.ctrl == self.addr {
                match self.do_local_delegate(ca.cap, to) {
                    Ok(d) => state.borrow_mut().slots[i] = Some(d),
                    Err(e) => {
                        let mut s = state.borrow_mut();
                        if s.failed.is_none() {
                            s.failed = Some(e);
                        }
                    }
                }
                continue;
            }
            let owner = ca.cap.ctrl;
            state.borrow_mut().outstanding += 1;
            let st = state.clone();
            let token = self.await_ack(
                owner,
                Box::new(move |this, res, ctx| {
                    {
                        let mut s = st.borrow_mut();
                        s.outstanding -= 1;
                        match res {
                            Ok(AckVal::Cap(d)) => s.slots[i] = Some(d),
                            Ok(_) => {
                                if s.failed.is_none() {
                                    s.failed = Some(FosError::WrongObjectKind);
                                }
                            }
                            Err(e) => {
                                if s.failed.is_none() {
                                    s.failed = Some(e);
                                }
                            }
                        }
                    }
                    FanIn::settle(&st, this, ctx);
                }),
            );
            self.peer_send(
                ctx,
                owner,
                PeerOp::Delegate {
                    obj: ca.cap,
                    to,
                    reply_to: self.addr,
                    token,
                },
                SimDuration::ZERO,
            );
        }
        FanIn::settle(&state, self, ctx);
    }

    // ------------------------------------------------------------------
    // Syscall handling
    // ------------------------------------------------------------------

    fn handle_syscall(&mut self, ctx: &mut Ctx<'_>, proc: ProcId, token: u64, sc: Syscall) {
        ctx.metrics().incr(&format!("ctrl.ops.{}", sc.name()));
        if self.dead_procs.contains(&proc) {
            return;
        }
        match sc {
            Syscall::Null => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                self.reply(ctx, proc, token, SyscallResult::Ok, extra);
            }
            Syscall::MemoryCreate { addr, size, perms } => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                let result = self.sc_memory_create(proc, addr, size, perms);
                self.reply(ctx, proc, token, result, extra);
            }
            Syscall::MemoryDiminish {
                cid,
                offset,
                size,
                drop_perms,
            } => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                match self.resolve_cid(proc, cid) {
                    Err(e) => self.reply(ctx, proc, token, SyscallResult::Err(e), extra),
                    Ok((cap, _)) if cap.ctrl == self.addr => {
                        let result =
                            match self.do_local_diminish(cap, proc, offset, size, drop_perms) {
                                Ok(ca) => match self.install_cap(proc, ca) {
                                    Ok(cid) => SyscallResult::NewCid(cid),
                                    Err(e) => SyscallResult::Err(e),
                                },
                                Err(e) => SyscallResult::Err(e),
                            };
                        self.reply(ctx, proc, token, result, extra);
                    }
                    Ok((cap, _)) => {
                        let owner = cap.ctrl;
                        let ptoken = self.await_ack(
                            owner,
                            Box::new(move |this, res, ctx| {
                                let result = match res {
                                    Ok(AckVal::Cap(ca)) => match this.install_cap(proc, ca) {
                                        Ok(cid) => SyscallResult::NewCid(cid),
                                        Err(e) => SyscallResult::Err(e),
                                    },
                                    Ok(_) => SyscallResult::Err(FosError::WrongObjectKind),
                                    Err(e) => SyscallResult::Err(e),
                                };
                                this.reply(ctx, proc, token, result, SimDuration::ZERO);
                            }),
                        );
                        self.peer_send(
                            ctx,
                            owner,
                            PeerOp::Derive {
                                obj: cap,
                                op: DeriveOp::Diminish {
                                    offset,
                                    size,
                                    drop_perms,
                                },
                                creator: proc,
                                reply_to: self.addr,
                                token: ptoken,
                            },
                            extra,
                        );
                    }
                }
            }
            Syscall::MemoryCopy { src, dst } => self.sc_memory_copy(ctx, proc, token, src, dst),
            Syscall::RequestCreate {
                base,
                tag,
                imms,
                caps,
            } => self.sc_request_create(ctx, proc, token, base, tag, imms, caps),
            Syscall::RequestInvoke { cid } => self.sc_request_invoke(ctx, proc, token, cid),
            Syscall::CapCreateRevtree { cid } => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                match self.resolve_cid(proc, cid) {
                    Err(e) => self.reply(ctx, proc, token, SyscallResult::Err(e), extra),
                    Ok((cap, _)) if cap.ctrl == self.addr => {
                        let result = match self.do_local_revtree(cap, proc) {
                            Ok(ca) => match self.install_cap(proc, ca) {
                                Ok(cid) => SyscallResult::NewCid(cid),
                                Err(e) => SyscallResult::Err(e),
                            },
                            Err(e) => SyscallResult::Err(e),
                        };
                        self.reply(ctx, proc, token, result, extra);
                    }
                    Ok((cap, _)) => {
                        let owner = cap.ctrl;
                        let ptoken = self.await_ack(
                            owner,
                            Box::new(move |this, res, ctx| {
                                let result = match res {
                                    Ok(AckVal::Cap(ca)) => match this.install_cap(proc, ca) {
                                        Ok(cid) => SyscallResult::NewCid(cid),
                                        Err(e) => SyscallResult::Err(e),
                                    },
                                    Ok(_) => SyscallResult::Err(FosError::WrongObjectKind),
                                    Err(e) => SyscallResult::Err(e),
                                };
                                this.reply(ctx, proc, token, result, SimDuration::ZERO);
                            }),
                        );
                        self.peer_send(
                            ctx,
                            owner,
                            PeerOp::Derive {
                                obj: cap,
                                op: DeriveOp::Revtree,
                                creator: proc,
                                reply_to: self.addr,
                                token: ptoken,
                            },
                            extra,
                        );
                    }
                }
            }
            Syscall::CapRevoke { cid } => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                match self.resolve_cid(proc, cid) {
                    Err(e) => self.reply(ctx, proc, token, SyscallResult::Err(e), extra),
                    Ok((cap, _)) if cap.ctrl == self.addr => {
                        let result = match self.do_local_revoke(ctx, cap) {
                            Ok(n) => SyscallResult::Value(n),
                            Err(e) => SyscallResult::Err(e),
                        };
                        self.reply(ctx, proc, token, result, extra);
                    }
                    Ok((cap, _)) => {
                        let owner = cap.ctrl;
                        let ptoken = self.await_ack(
                            owner,
                            Box::new(move |this, res, ctx| {
                                let result = match res {
                                    Ok(AckVal::Count(n)) => SyscallResult::Value(n),
                                    Ok(_) => SyscallResult::Ok,
                                    Err(e) => SyscallResult::Err(e),
                                };
                                this.reply(ctx, proc, token, result, SimDuration::ZERO);
                            }),
                        );
                        self.peer_send(
                            ctx,
                            owner,
                            PeerOp::Revoke {
                                obj: cap,
                                reply_to: self.addr,
                                token: ptoken,
                            },
                            extra,
                        );
                    }
                }
            }
            Syscall::MonitorDelegate { cid, callback_id } => {
                self.sc_monitor(ctx, proc, token, cid, MonitorKind::Delegate, callback_id)
            }
            Syscall::MonitorReceive { cid, callback_id } => {
                self.sc_monitor(ctx, proc, token, cid, MonitorKind::Receive, callback_id)
            }
            Syscall::MemoryStat { cid } => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                let result = match self.resolve_cid(proc, cid) {
                    Err(e) => SyscallResult::Err(e),
                    Ok((_, None)) => SyscallResult::Err(FosError::WrongObjectKind),
                    Ok((_, Some(desc))) => {
                        if desc.proc == proc {
                            SyscallResult::Stat {
                                addr: desc.addr,
                                off: desc.view_off,
                                size: desc.size,
                            }
                        } else {
                            // Only the backing Process may learn raw
                            // addresses.
                            SyscallResult::Err(FosError::PermissionDenied)
                        }
                    }
                };
                self.reply(ctx, proc, token, result, extra);
            }
            Syscall::KvPut { key, cid } => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                match self.resolve_cid(proc, cid) {
                    Err(e) => self.reply(ctx, proc, token, SyscallResult::Err(e), extra),
                    Ok((cap, mem)) => {
                        let ca = CapArg { cap, mem };
                        if self.addr == self.registry {
                            self.kv.insert(key, ca);
                            self.reply(ctx, proc, token, SyscallResult::Ok, extra);
                        } else {
                            let reg = self.registry;
                            let ptoken = self.await_ack(
                                reg,
                                Box::new(move |this, res, ctx| {
                                    let result = match res {
                                        Ok(_) => SyscallResult::Ok,
                                        Err(e) => SyscallResult::Err(e),
                                    };
                                    this.reply(ctx, proc, token, result, SimDuration::ZERO);
                                }),
                            );
                            self.peer_send(
                                ctx,
                                reg,
                                PeerOp::KvPut {
                                    key,
                                    cap: ca,
                                    reply_to: self.addr,
                                    token: ptoken,
                                },
                                extra,
                            );
                        }
                    }
                }
            }
            Syscall::KvGet { key } => {
                let h = self.handling();
                let extra = self.charge(ctx.now(), h * 2);
                if self.addr == self.registry {
                    self.kv_get_local(ctx, key, proc, None, token, extra);
                } else {
                    let reg = self.registry;
                    let ptoken = self.await_ack(
                        reg,
                        Box::new(move |this, res, ctx| {
                            let result = match res {
                                Ok(AckVal::Cap(ca)) => match this.install_cap(proc, ca) {
                                    Ok(cid) => SyscallResult::NewCid(cid),
                                    Err(e) => SyscallResult::Err(e),
                                },
                                Ok(_) => SyscallResult::Err(FosError::NoSuchKey),
                                Err(e) => SyscallResult::Err(e),
                            };
                            this.reply(ctx, proc, token, result, SimDuration::ZERO);
                        }),
                    );
                    self.peer_send(
                        ctx,
                        reg,
                        PeerOp::KvGet {
                            key,
                            to: proc,
                            reply_to: self.addr,
                            token: ptoken,
                        },
                        extra,
                    );
                }
            }
        }
    }

    fn sc_memory_create(
        &mut self,
        proc: ProcId,
        addr: u64,
        size: u64,
        perms: fractos_cap::Perms,
    ) -> SyscallResult {
        let proc_ep = match self.dir.borrow().proc(proc) {
            Some(pe) => pe.endpoint,
            None => return SyscallResult::Err(FosError::ProcessFailed),
        };
        // The buffer must exist and be large enough. Device memory (e.g. a
        // GPU buffer allocated by its adaptor) keeps its device placement.
        let location = {
            let mem = self.mem.borrow();
            match mem.region_size(proc, addr) {
                Some(rs) if rs >= size => mem.region_location(proc, addr).unwrap_or(proc_ep),
                _ => return SyscallResult::Err(FosError::OutOfBounds),
            }
        };
        let desc = MemoryDesc {
            proc,
            location,
            addr,
            view_off: 0,
            size,
            perms,
        };
        let cap = self
            .table
            .create(proc.token(), ObjPayload::Memory(desc.clone()));
        self.mem.borrow_mut().register_window(cap, desc.clone());
        match self.install_cap(
            proc,
            CapArg {
                cap,
                mem: Some(desc),
            },
        ) {
            Ok(cid) => SyscallResult::NewCid(cid),
            Err(e) => SyscallResult::Err(e),
        }
    }

    fn sc_memory_copy(&mut self, ctx: &mut Ctx<'_>, proc: ProcId, token: u64, src: Cid, dst: Cid) {
        let h = self.handling();
        let (src_ref, src_snap) = match self.resolve_cid(proc, src) {
            Ok(v) => v,
            Err(e) => {
                let extra = self.charge(ctx.now(), h);
                self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
                return;
            }
        };
        let (dst_ref, dst_snap) = match self.resolve_cid(proc, dst) {
            Ok(v) => v,
            Err(e) => {
                let extra = self.charge(ctx.now(), h);
                self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
                return;
            }
        };
        let (Some(src_desc), Some(dst_desc)) = (src_snap, dst_snap) else {
            let extra = self.charge(ctx.now(), h);
            self.reply(
                ctx,
                proc,
                token,
                SyscallResult::Err(FosError::WrongObjectKind),
                extra,
            );
            return;
        };
        let size = src_desc.size;
        if dst_desc.size < size {
            let extra = self.charge(ctx.now(), h);
            self.reply(
                ctx,
                proc,
                token,
                SyscallResult::Err(FosError::SizeMismatch),
                extra,
            );
            return;
        }

        // Static pre-dispatch verification (§3.3): the copy's permission
        // requirements are provable from the capability snapshots alone, so
        // a doomed copy is rejected before any byte moves. The rejection
        // costs the same single handling charge as the runtime error path
        // it replaces; only the counters differ.
        let sc = Syscall::MemoryCopy { src, dst };
        let verdict = crate::verify::verify_syscall(&sc, |c| {
            if c == src {
                Some(src_desc.clone())
            } else if c == dst {
                Some(dst_desc.clone())
            } else {
                None
            }
        });
        if let Err(v) = verdict {
            self.fabric
                .borrow_mut()
                .note_verify(|s| s.record_verify_reject());
            let extra = self.charge(ctx.now(), h);
            self.reply(
                ctx,
                proc,
                token,
                SyscallResult::Err(FosError::Verify(v)),
                extra,
            );
            return;
        }

        // Move the actual bytes through the windows (one-sided access with
        // validity, permission and bounds checks at the owner side).
        let read = { self.mem.borrow().rdma_read_window(src_ref, 0, size) };
        let mut data = match read {
            Ok(d) => d,
            Err(e) => {
                let extra = self.charge(ctx.now(), h);
                self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
                return;
            }
        };
        // Data-plane corruption: on links the armed plan names, one bit of
        // the payload may flip in flight (data class only — the control
        // plane keeps the drop model). The source checksum is the
        // producer-side integrity envelope; it is captured before the flip
        // so the destination read-back below can catch the corruption.
        let (src_node, dst_node) = (src_desc.location.node, dst_desc.location.node);
        let src_sum = {
            let mut fabric = self.fabric.borrow_mut();
            if fabric.corrupts_data(src_node, dst_node) {
                let sum = crate::integrity::fnv1a(&data);
                if let Some(bit) = fabric.corrupt_payload(src_node, dst_node) {
                    crate::integrity::flip_bit(&mut data, bit);
                }
                Some(sum)
            } else {
                None
            }
        };
        let write = { self.mem.borrow_mut().rdma_write_window(dst_ref, 0, &data) };
        if let Err(e) = write {
            let extra = self.charge(ctx.now(), h);
            self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
            return;
        }

        // Latency model. Snapshot the scalar knobs up front: `charge` and
        // the per-chunk `send`s below need the fabric lock themselves, so
        // a params borrow cannot stay alive across the loop — and cloning
        // the whole block per syscall is what this path used to pay.
        let (third_party_rdma, local_oneway, proc_cost, db_threshold, db_chunk, bounce_bw, e2e) = {
            let fabric = self.fabric.borrow();
            let p = fabric.params();
            (
                p.third_party_rdma,
                p.local_oneway,
                p.memcopy_proc(self.domain),
                p.double_buffer_threshold,
                p.double_buffer_chunk,
                p.bounce_memcpy_bw(self.domain),
                p.end_to_end_integrity,
            )
        };
        let extra = if third_party_rdma {
            // "HW copies" (Fig 5): the NIC moves data directly between the
            // two processes; the Controller only orchestrates.
            let start = ctx.now() + self.charge(ctx.now(), h);
            let copy = {
                let mut fabric = self.fabric.borrow_mut();
                fabric.rdma_write(start, ctx.rng(), src_desc.location, dst_desc.location, size)
            };
            let done = start + copy + local_oneway;
            done.duration_since(ctx.now())
        } else {
            // Bounce buffers in the Controller with double buffering above
            // the threshold (§4, §6.1). All chunk-read requests are posted
            // back to back (the source's egress link serializes the
            // responses); each chunk's write is posted as soon as its read
            // has landed and been processed (the destination link
            // serializes the writes); a single completion closes the
            // transfer. The Controller pays processing per chunk on its
            // (serial) cores.
            let chunk = if size > db_threshold {
                db_chunk.min(size)
            } else {
                size.max(1)
            };
            let t0 = ctx.now() + self.charge(ctx.now(), h);
            let mut last_write_arrival = t0;
            let mut off = 0u64;
            while off < size {
                let n = chunk.min(size - off);
                // One-sided read: tiny request now, bulk response queued on
                // the source-side links.
                let (req, resp) = {
                    let mut fabric = self.fabric.borrow_mut();
                    let req = fabric.send(
                        t0,
                        ctx.rng(),
                        self.endpoint,
                        src_desc.location,
                        32,
                        TrafficClass::Control,
                    );
                    let resp = fabric.send(
                        t0 + req,
                        ctx.rng(),
                        src_desc.location,
                        self.endpoint,
                        n,
                        TrafficClass::Data,
                    );
                    (req, resp)
                };
                let read_landed = t0 + req + resp;
                // Chunk processing on the Controller cores: request
                // bookkeeping plus two memcpys through the bounce buffers.
                let chunk_cpu = proc_cost + NetParams::bounce_memcpy_at(bounce_bw, n);
                let processed = read_landed + self.charge(read_landed, chunk_cpu);
                // One-sided write: bulk data queued on the path to the
                // destination.
                let wr = {
                    let mut fabric = self.fabric.borrow_mut();
                    fabric.send(
                        processed,
                        ctx.rng(),
                        self.endpoint,
                        dst_desc.location,
                        n,
                        TrafficClass::Data,
                    )
                };
                last_write_arrival = last_write_arrival.max(processed + wr);
                off += n;
            }
            // Final completion (write ack) back to the Controller.
            let ack = {
                let mut fabric = self.fabric.borrow_mut();
                fabric.send(
                    last_write_arrival,
                    ctx.rng(),
                    dst_desc.location,
                    self.endpoint,
                    0,
                    TrafficClass::Control,
                )
            };
            (last_write_arrival + ack).duration_since(ctx.now())
        };
        // The whole orchestrated transfer is one aggregate Data span; the
        // per-chunk fabric sends above are link reservations, not messages.
        let data_span = if self.cur.is_some() {
            ctx.span(
                SpanKind::Data,
                "memcpy",
                self.cur,
                ctx.now(),
                ctx.now() + extra,
            )
        } else {
            TraceCtx::NONE
        };
        // Integrity envelope at the consumption boundary: re-read the
        // destination and compare against the producer-side checksum. This
        // models the NIC's inline CRC engine, so it adds no simulated
        // time; it only runs on links the plan can corrupt, keeping clean
        // runs byte-identical. A mismatch surfaces as a typed error — the
        // corrupted bytes stay in the destination, exactly as they would
        // on real hardware, and the caller decides whether to retry.
        if e2e {
            if let Some(sum) = src_sum {
                let back = { self.mem.borrow().rdma_read_window(dst_ref, 0, size) };
                if !back.is_ok_and(|b| crate::integrity::fnv1a(&b) == sum) {
                    if data_span.is_some() {
                        let at = ctx.now() + extra;
                        ctx.span(
                            SpanKind::Integrity,
                            "integrity-violation",
                            data_span,
                            at,
                            at,
                        );
                    }
                    self.reply(
                        ctx,
                        proc,
                        token,
                        SyscallResult::Err(FosError::IntegrityViolation),
                        extra,
                    );
                    return;
                }
            }
        }
        self.reply(ctx, proc, token, SyscallResult::Ok, extra);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the syscall's shape
    fn sc_request_create(
        &mut self,
        ctx: &mut Ctx<'_>,
        proc: ProcId,
        token: u64,
        base: Option<Cid>,
        tag: u64,
        imms: Vec<Payload>,
        caps: Vec<Cid>,
    ) {
        let h = self.handling();
        let extra = self.charge(ctx.now(), h * 2);
        // Resolve capability arguments from the caller's space.
        let mut cap_args = Vec::with_capacity(caps.len());
        for cid in caps {
            match self.resolve_cid(proc, cid) {
                Ok((cap, mem)) => cap_args.push(CapArg { cap, mem }),
                Err(e) => {
                    self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
                    return;
                }
            }
        }
        match base {
            None => {
                // New Request provided by the caller itself; it already
                // holds the argument capabilities, so no delegation
                // registration is needed.
                let desc = RequestDesc {
                    provider: proc,
                    tag,
                    args: imms
                        .into_iter()
                        .map(Arg::Imm)
                        .chain(cap_args.into_iter().map(Arg::Cap))
                        .collect(),
                };
                let cap = self.table.create(proc.token(), ObjPayload::Request(desc));
                let result = match self.install_cap(proc, CapArg { cap, mem: None }) {
                    Ok(cid) => SyscallResult::NewCid(cid),
                    Err(e) => SyscallResult::Err(e),
                };
                self.reply(ctx, proc, token, result, extra);
            }
            Some(base_cid) => {
                let (base_ref, _) = match self.resolve_cid(proc, base_cid) {
                    Ok(v) => v,
                    Err(e) => {
                        self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
                        return;
                    }
                };
                if base_ref.ctrl == self.addr {
                    self.refine_local(
                        ctx,
                        base_ref,
                        proc,
                        imms,
                        cap_args,
                        move |this, res, ctx| {
                            let result = match res {
                                Ok(ca) => match this.install_cap(proc, ca) {
                                    Ok(cid) => SyscallResult::NewCid(cid),
                                    Err(e) => SyscallResult::Err(e),
                                },
                                Err(e) => SyscallResult::Err(e),
                            };
                            this.reply(ctx, proc, token, result, SimDuration::ZERO);
                        },
                    );
                } else {
                    let owner = base_ref.ctrl;
                    let ptoken = self.await_ack(
                        owner,
                        Box::new(move |this, res, ctx| {
                            let result = match res {
                                Ok(AckVal::Cap(ca)) => match this.install_cap(proc, ca) {
                                    Ok(cid) => SyscallResult::NewCid(cid),
                                    Err(e) => SyscallResult::Err(e),
                                },
                                Ok(_) => SyscallResult::Err(FosError::WrongObjectKind),
                                Err(e) => SyscallResult::Err(e),
                            };
                            this.reply(ctx, proc, token, result, SimDuration::ZERO);
                        }),
                    );
                    self.peer_send(
                        ctx,
                        owner,
                        PeerOp::Derive {
                            obj: base_ref,
                            op: DeriveOp::Refine {
                                imms,
                                caps: cap_args,
                            },
                            creator: proc,
                            reply_to: self.addr,
                            token: ptoken,
                        },
                        extra,
                    );
                }
            }
        }
    }

    /// Owner-side Request refinement: register delegation of the appended
    /// capability arguments to the provider, then derive the refined object.
    fn refine_local(
        &mut self,
        ctx: &mut Ctx<'_>,
        base: CapRef,
        creator: ProcId,
        imms: Vec<Payload>,
        cap_args: Vec<CapArg>,
        done: impl FnOnce(&mut Self, Result<CapArg, FosError>, &mut Ctx<'_>) + Send + 'static,
    ) {
        if let Err(e) = self.table.check(base) {
            done(self, Err(e.into()), ctx);
            return;
        }
        let Some(base_desc) = self
            .table
            .resolve(base)
            .ok()
            .and_then(|p| p.as_request().cloned())
        else {
            done(self, Err(FosError::WrongObjectKind), ctx);
            return;
        };
        let provider = base_desc.provider;
        self.delegate_seq(
            ctx,
            cap_args,
            Vec::new(),
            provider,
            Box::new(move |this, res, ctx| match res {
                Err(e) => done(this, Err(e), ctx),
                Ok(delegated) => {
                    let mut desc = base_desc;
                    desc.args.extend(imms.into_iter().map(Arg::Imm));
                    desc.args.extend(delegated.into_iter().map(Arg::Cap));
                    match this
                        .table
                        .derive(base.object, creator.token(), ObjPayload::Request(desc))
                    {
                        Ok(cap) => done(this, Ok(CapArg { cap, mem: None }), ctx),
                        Err(e) => done(this, Err(e.into()), ctx),
                    }
                }
            }),
        );
    }

    fn sc_request_invoke(&mut self, ctx: &mut Ctx<'_>, proc: ProcId, token: u64, cid: Cid) {
        let cost = self.invoke_handling();
        let extra = self.charge(ctx.now(), cost);
        let (req_ref, _) = match self.resolve_cid(proc, cid) {
            Ok(v) => v,
            Err(e) => {
                self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
                return;
            }
        };
        // Submission-time verification (§3.3): the submitting Controller
        // statically checks what is provable from its own table before
        // dispatch. A remote root carries no local plan state — it is
        // skipped here and re-verified by the owner on admission (defense
        // in depth). Verification is free in simulated time.
        self.fabric
            .borrow_mut()
            .note_verify(|s| s.record_verify_submission());
        if let Err(v) = crate::verify::verify_plan(&self.table, req_ref) {
            self.fabric
                .borrow_mut()
                .note_verify(|s| s.record_verify_reject());
            self.reply(
                ctx,
                proc,
                token,
                SyscallResult::Err(FosError::Verify(v)),
                extra,
            );
            return;
        }
        if req_ref.ctrl == self.addr {
            let result = match self.do_local_invoke(ctx, req_ref, extra) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            };
            self.reply(ctx, proc, token, result, extra);
        } else {
            let owner = req_ref.ctrl;
            let ptoken = self.await_ack(
                owner,
                Box::new(move |this, res, ctx| {
                    let result = match res {
                        Ok(_) => SyscallResult::Ok,
                        Err(e) => SyscallResult::Err(e),
                    };
                    this.reply(ctx, proc, token, result, SimDuration::ZERO);
                }),
            );
            self.peer_send(
                ctx,
                owner,
                PeerOp::Invoke {
                    req: req_ref,
                    reply_to: self.addr,
                    token: ptoken,
                },
                extra,
            );
        }
    }

    /// Owner-side invocation: deliver the Request to its provider Process.
    fn do_local_invoke(
        &mut self,
        ctx: &mut Ctx<'_>,
        req: CapRef,
        extra: SimDuration,
    ) -> Result<(), FosError> {
        self.table.check(req)?;
        let desc = self
            .table
            .resolve(req)?
            .as_request()
            .cloned()
            .ok_or(FosError::WrongObjectKind)?;
        let provider = desc.provider;
        let alive = self.dir.borrow().proc(provider).is_some_and(|p| p.alive)
            && !self.dead_procs.contains(&provider);
        if !alive {
            return Err(FosError::ProcessFailed);
        }
        // Admission-time verification: the owner re-walks the full
        // continuation plan against its own (authoritative) table before
        // delivering — the submitting Controller's check may have been
        // shallow (remote root) or raced a revocation in flight.
        self.fabric
            .borrow_mut()
            .note_verify(|s| s.record_verify_admission());
        if let Err(v) = crate::verify::verify_plan(&self.table, req) {
            self.fabric
                .borrow_mut()
                .note_verify(|s| s.record_verify_reject());
            return Err(FosError::Verify(v));
        }
        let mut imms = Vec::new();
        let mut cids = Vec::new();
        for arg in &desc.args {
            match arg {
                Arg::Imm(b) => imms.push(b.clone()),
                Arg::Cap(ca) => cids.push(self.install_cap(provider, ca.clone())?),
            }
        }
        self.send_proc(
            ctx,
            provider,
            CtrlToProc::Deliver(IncomingRequest {
                tag: desc.tag,
                imms,
                caps: cids,
            }),
            extra,
        );
        Ok(())
    }

    fn sc_monitor(
        &mut self,
        ctx: &mut Ctx<'_>,
        proc: ProcId,
        token: u64,
        cid: Cid,
        kind: MonitorKind,
        callback_id: u64,
    ) {
        let h = self.handling();
        let extra = self.charge(ctx.now(), h * 2);
        let (cap, _) = match self.resolve_cid(proc, cid) {
            Ok(v) => v,
            Err(e) => {
                self.reply(ctx, proc, token, SyscallResult::Err(e), extra);
                return;
            }
        };
        if cap.ctrl == self.addr {
            let result = match self.do_local_monitor(cap, kind, proc, callback_id) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            };
            self.reply(ctx, proc, token, result, extra);
        } else {
            let owner = cap.ctrl;
            let ptoken = self.await_ack(
                owner,
                Box::new(move |this, res, ctx| {
                    let result = match res {
                        Ok(_) => SyscallResult::Ok,
                        Err(e) => SyscallResult::Err(e),
                    };
                    this.reply(ctx, proc, token, result, SimDuration::ZERO);
                }),
            );
            self.peer_send(
                ctx,
                owner,
                PeerOp::Monitor {
                    obj: cap,
                    kind,
                    watcher: proc,
                    callback_id,
                    reply_to: self.addr,
                    token: ptoken,
                },
                extra,
            );
        }
    }

    fn do_local_monitor(
        &mut self,
        cap: CapRef,
        kind: MonitorKind,
        watcher: ProcId,
        callback_id: u64,
    ) -> Result<(), FosError> {
        self.table.check(cap)?;
        let w = Watcher {
            process: watcher.token(),
            callback_id,
        };
        match kind {
            MonitorKind::Delegate => self.table.monitor_delegate(cap.object, w)?,
            MonitorKind::Receive => self.table.monitor_receive(cap.object, w)?,
        }
        Ok(())
    }

    fn kv_get_local(
        &mut self,
        ctx: &mut Ctx<'_>,
        key: String,
        to: ProcId,
        ack_to: Option<(ControllerAddr, u64)>,
        proc_token: u64,
        extra: SimDuration,
    ) {
        let Some(ca) = self.kv.get(&key).cloned() else {
            match ack_to {
                Some((peer, token)) => self.peer_send(
                    ctx,
                    peer,
                    PeerOp::KvGetAck {
                        token,
                        result: Err(FosError::NoSuchKey),
                    },
                    extra,
                ),
                None => self.reply(
                    ctx,
                    to,
                    proc_token,
                    SyscallResult::Err(FosError::NoSuchKey),
                    extra,
                ),
            }
            return;
        };
        // Register the delegation at the owner, then hand out the result.
        self.delegate_seq(
            ctx,
            vec![ca],
            Vec::new(),
            to,
            Box::new(move |this, res, ctx| {
                let result = res.map(|mut v| v.remove(0));
                match ack_to {
                    Some((peer, token)) => this.peer_send(
                        ctx,
                        peer,
                        PeerOp::KvGetAck { token, result },
                        SimDuration::ZERO,
                    ),
                    None => {
                        let sr = match result {
                            Ok(ca) => match this.install_cap(to, ca) {
                                Ok(cid) => SyscallResult::NewCid(cid),
                                Err(e) => SyscallResult::Err(e),
                            },
                            Err(e) => SyscallResult::Err(e),
                        };
                        this.reply(ctx, to, proc_token, sr, SimDuration::ZERO);
                    }
                }
            }),
        );
    }

    // ------------------------------------------------------------------
    // Peer-op handling
    // ------------------------------------------------------------------

    fn handle_peer(&mut self, ctx: &mut Ctx<'_>, from: ControllerAddr, op: PeerOp) {
        // Receiver-side (de)serialization cost.
        let crossing = match self.dir.borrow().ctrl(from) {
            Some(ce) => ce.endpoint.node != self.endpoint.node,
            None => false,
        };
        let ser = self.serialize_cost(&op, crossing);
        let h = self.handling();

        match op {
            PeerOp::Invoke {
                req,
                reply_to,
                token,
            } => {
                let cost = self.invoke_handling();
                let extra = self.charge(ctx.now(), cost + ser);
                let result = self.do_local_invoke(ctx, req, extra);
                self.peer_send(ctx, reply_to, PeerOp::InvokeAck { token, result }, extra);
            }
            PeerOp::InvokeAck { token, result } => {
                let extra = self.charge(ctx.now(), h);
                let _ = extra;
                self.complete_ack(ctx, token, result.map(|()| AckVal::None));
            }
            PeerOp::Derive {
                obj,
                op,
                creator,
                reply_to,
                token,
            } => {
                let extra = self.charge(ctx.now(), h + ser);
                match op {
                    DeriveOp::Diminish {
                        offset,
                        size,
                        drop_perms,
                    } => {
                        let result = self.do_local_diminish(obj, creator, offset, size, drop_perms);
                        self.peer_send(ctx, reply_to, PeerOp::DeriveAck { token, result }, extra);
                    }
                    DeriveOp::Revtree => {
                        let result = self.do_local_revtree(obj, creator);
                        self.peer_send(ctx, reply_to, PeerOp::DeriveAck { token, result }, extra);
                    }
                    DeriveOp::Refine { imms, caps } => {
                        self.refine_local(
                            ctx,
                            obj,
                            creator,
                            imms,
                            caps,
                            move |this, result, ctx| {
                                this.peer_send(
                                    ctx,
                                    reply_to,
                                    PeerOp::DeriveAck { token, result },
                                    SimDuration::ZERO,
                                );
                            },
                        );
                    }
                }
            }
            PeerOp::DeriveAck { token, result } | PeerOp::DelegateAck { token, result } => {
                let _ = self.charge(ctx.now(), h + ser);
                self.complete_ack(ctx, token, result.map(AckVal::Cap));
            }
            PeerOp::Delegate {
                obj,
                to,
                reply_to,
                token,
            } => {
                let extra = self.charge(ctx.now(), h + ser);
                let result = self.do_local_delegate(obj, to);
                self.peer_send(ctx, reply_to, PeerOp::DelegateAck { token, result }, extra);
            }
            PeerOp::Revoke {
                obj,
                reply_to,
                token,
            } => {
                let extra = self.charge(ctx.now(), h);
                let result = self.do_local_revoke(ctx, obj);
                self.peer_send(ctx, reply_to, PeerOp::RevokeAck { token, result }, extra);
            }
            PeerOp::RevokeAck { token, result } => {
                let _ = self.charge(ctx.now(), h);
                self.complete_ack(ctx, token, result.map(AckVal::Count));
            }
            PeerOp::Monitor {
                obj,
                kind,
                watcher,
                callback_id,
                reply_to,
                token,
            } => {
                let extra = self.charge(ctx.now(), h);
                let result = self.do_local_monitor(obj, kind, watcher, callback_id);
                self.peer_send(ctx, reply_to, PeerOp::MonitorAck { token, result }, extra);
            }
            PeerOp::MonitorAck { token, result } => {
                let _ = self.charge(ctx.now(), h);
                self.complete_ack(ctx, token, result.map(|()| AckVal::None));
            }
            PeerOp::MonitorEvent { proc, cb } => {
                let extra = self.charge(ctx.now(), h);
                self.send_proc(ctx, proc, CtrlToProc::Monitor(cb), extra);
            }
            PeerOp::Cleanup { objs } => {
                let _ = self.charge(ctx.now(), h);
                self.scrub_capspaces(&objs);
            }
            PeerOp::FailProcess { proc } => {
                let _ = self.charge(ctx.now(), h);
                self.fail_process_local(ctx, proc);
            }
            PeerOp::KvPut {
                key,
                cap,
                reply_to,
                token,
            } => {
                let extra = self.charge(ctx.now(), h + ser);
                self.kv.insert(key, cap);
                self.peer_send(
                    ctx,
                    reply_to,
                    PeerOp::KvPutAck {
                        token,
                        result: Ok(()),
                    },
                    extra,
                );
            }
            PeerOp::KvPutAck { token, result } => {
                let _ = self.charge(ctx.now(), h);
                self.complete_ack(ctx, token, result.map(|()| AckVal::None));
            }
            PeerOp::KvGet {
                key,
                to,
                reply_to,
                token,
            } => {
                let extra = self.charge(ctx.now(), h);
                self.kv_get_local(ctx, key, to, Some((reply_to, token)), 0, extra);
            }
            PeerOp::KvGetAck { token, result } => {
                let _ = self.charge(ctx.now(), h + ser);
                self.complete_ack(ctx, token, result.map(AckVal::Cap));
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure translation (§3.6)
    // ------------------------------------------------------------------

    /// Local part of Process-failure translation: revoke everything the
    /// Process registered with *this* Controller and drop its capability
    /// space.
    fn fail_process_local(&mut self, ctx: &mut Ctx<'_>, proc: ProcId) {
        let outcome = self.table.fail_process(proc.token());
        let epoch = self.table.epoch();
        {
            let mut mem = self.mem.borrow_mut();
            for id in &outcome.revoked {
                mem.invalidate_window(CapRef {
                    ctrl: self.addr,
                    epoch,
                    object: *id,
                });
            }
        }
        self.dispatch_monitor_events(ctx, &outcome.events);
        if self.spaces.remove(&proc).is_some() {
            self.dead_procs.insert(proc);
            self.snaps.retain(|(p, _), _| *p != proc);
        }
    }

    /// Full Process-failure translation at the managing Controller: local
    /// cleanup plus a broadcast so every owner revokes the Process's
    /// objects.
    fn on_proc_severed(&mut self, ctx: &mut Ctx<'_>, proc: ProcId) {
        self.dir.borrow_mut().kill_proc(proc);
        self.mem.borrow_mut().invalidate_proc_windows(proc);
        self.fail_process_local(ctx, proc);
        let peers = self.dir.borrow().all_ctrls();
        for peer in peers {
            if peer != self.addr && !self.peers_dead.contains(&peer) {
                self.peer_send(ctx, peer, PeerOp::FailProcess { proc }, SimDuration::ZERO);
            }
        }
    }

    fn on_peer_failed(&mut self, ctx: &mut Ctx<'_>, peer: ControllerAddr) {
        if !self.peers_dead.insert(peer) {
            return;
        }
        self.fail_ops_to(ctx, peer);
        // All Processes the dead Controller managed are considered failed
        // (§3.6); translate locally.
        let procs = self.dir.borrow().procs_of(peer);
        for proc in procs {
            self.mem.borrow_mut().invalidate_proc_windows(proc);
            self.fail_process_local(ctx, proc);
        }
        // Every capability the dead Controller minted is revoked with its
        // death epoch: scrub it from the capability spaces of the Processes
        // managed here (later use yields a typed BadCid verdict, never a
        // silent hang on the dead owner) and from the bootstrap registry,
        // so lookups can never hand out a dead instance's capability.
        for (proc, space) in self.spaces.iter_mut() {
            let victims: Vec<Cid> = space
                .iter()
                .filter(|(_, cap)| cap.ctrl == peer)
                .map(|(cid, _)| cid)
                .collect();
            for cid in victims {
                let _ = space.remove(cid);
                self.snaps.remove(&(*proc, cid));
            }
        }
        self.kv.retain(|_, ca| ca.cap.ctrl != peer);
        self.peer_revocations.push((peer, ctx.now()));
        if ctx.spans_enabled() {
            ctx.span(
                SpanKind::Recovery,
                "revoke",
                TraceCtx::NONE,
                ctx.now(),
                ctx.now(),
            );
        }
    }
}

impl Actor for ControllerActor {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        // A message of any other type is a harness wiring bug; dropping it
        // is safer than unwinding mid-event (poisoned shared state).
        let Ok(msg) = msg.downcast::<CtrlMsg>() else {
            return;
        };
        let msg = *msg;
        if self.dead {
            // A dead Controller neither processes nor replies; reboots
            // arrive as CtrlMsg::Reboot.
            if let CtrlMsg::Reboot = msg {
                self.dead = false;
                self.table.reboot();
                self.spaces.clear();
                self.snaps.clear();
                self.kv.clear();
                self.pending.clear();
                self.dead_procs.clear();
                self.dir.borrow_mut().revive_ctrl(self.addr);
            }
            return;
        }
        // Each event starts outside any trace; the matching arm restores
        // the context carried by its envelope or pending record.
        self.cur = TraceCtx::NONE;
        match msg {
            CtrlMsg::FromProc {
                proc,
                token,
                sc,
                seq,
                tctx,
            } => {
                if !self.seen_proc.entry(proc).or_default().fresh(seq) {
                    // Duplicate transmit of an already-processed syscall.
                    return;
                }
                self.cur = tctx;
                // Account the arriving syscall's wire size once more is not
                // needed — the sender already recorded it; just process.
                let _ = syscall_msg_size(&sc);
                ctx.trace(format!("{} syscall {} from {}", self.addr, sc.name(), proc));
                self.handle_syscall(ctx, proc, token, sc);
            }
            CtrlMsg::FromPeer {
                from,
                op,
                seq,
                tctx,
            } => {
                if !self.seen_peer.entry(from).or_default().fresh(seq) {
                    return;
                }
                self.cur = tctx;
                ctx.trace(format!(
                    "{} peer-op from {}: {}",
                    self.addr,
                    from,
                    peer_op_name(&op)
                ));
                self.handle_peer(ctx, from, op)
            }
            CtrlMsg::RetransmitProc {
                proc,
                msg,
                seq,
                attempt,
                tctx,
            } => {
                self.cur = tctx;
                self.transmit_proc(ctx, proc, msg, seq, attempt, SimDuration::ZERO)
            }
            CtrlMsg::RetransmitPeer {
                to,
                op,
                seq,
                attempt,
                tctx,
            } => {
                self.cur = tctx;
                self.transmit_peer(ctx, to, op, seq, attempt, SimDuration::ZERO)
            }
            CtrlMsg::AckTimeout { token } => {
                if let Some(p) = self.pending.get(&token) {
                    if p.tctx.is_some() {
                        let t = p.tctx;
                        ctx.span(SpanKind::Fault, "ack-timeout", t, ctx.now(), ctx.now());
                    }
                    self.complete_ack(ctx, token, Err(FosError::ControllerUnreachable));
                }
            }
            CtrlMsg::ProcChannelSevered { proc } => self.on_proc_severed(ctx, proc),
            CtrlMsg::PeerFailed { peer } => self.on_peer_failed(ctx, peer),
            CtrlMsg::PeerRecovered { peer } => {
                // The watchdog saw the peer answer pings again: the outage
                // was a partition, not a crash. New operations may flow;
                // operations failed meanwhile stay failed.
                self.peers_dead.remove(&peer);
            }
            CtrlMsg::Kill => {
                self.dead = true;
                self.dir.borrow_mut().kill_ctrl(self.addr);
            }
            CtrlMsg::Reboot => {
                // Reboot of a live Controller: same state loss.
                self.table.reboot();
                self.spaces.clear();
                self.snaps.clear();
                self.kv.clear();
                self.pending.clear();
                self.dead_procs.clear();
            }
            CtrlMsg::Ping {
                watchdog,
                watchdog_ep,
                seq,
            } => {
                // Pongs are droppable and never retransmitted: their loss
                // IS the watchdog's failure signal (§3.6).
                let outcome = self.fabric.borrow_mut().try_send(
                    ctx.now(),
                    ctx.rng(),
                    self.endpoint,
                    watchdog_ep,
                    16,
                    TrafficClass::Control,
                );
                if let SendOutcome::Delivered(delay) = outcome {
                    ctx.send_after(
                        delay,
                        watchdog,
                        crate::watchdog::WatchdogMsg::Pong {
                            from: self.addr,
                            seq,
                        },
                    );
                }
            }
        }
        // Publish the pending-op depth after every event that may have
        // changed it. This actor is the only writer of its series, so
        // last-value-per-window bucketing is deterministic on both backends.
        if ctx.telemetry_enabled() {
            let depth = self.pending.len();
            if self.tele_pending_last != Some(depth) {
                self.tele_pending_last = Some(depth);
                let series = format!("ctrl.{}.pending_ops", self.addr);
                ctx.telemetry_gauge(&series, depth as u64);
            }
        }
    }
}
