#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! FractOS-rs core: the distributed OS layer of the paper (§3–§4).
//!
//! FractOS elevates disaggregated devices to first-class citizens: Memory
//! and Request objects live in a global namespace protected by distributed
//! capabilities; continuation-based Requests let devices invoke each other
//! directly without centralized application control; trusted Controllers —
//! deployable on host CPUs or SmartNICs — implement RPC routing, address
//! translation, delegation, immediate owner-side revocation, monitors and
//! failure translation.
//!
//! Module map:
//!
//! * [`types`] — Memory/Request descriptors, the Table-1 syscall surface;
//! * [`wire`] — the hand-rolled wire codec (sizes feed traffic accounting);
//! * [`memstore`] — simulated Process memory + RDMA windows (real bytes);
//! * [`messages`] — Process↔Controller and Controller↔Controller messages;
//! * [`process`] — the Process runtime and `libfractos` CPS API;
//! * [`controller`] — the Controller actor (the trusted OS layer);
//! * [`directory`] — shared cluster directory;
//! * [`testbed`] — cluster assembly and failure injection;
//! * [`retry`] — retransmission policy + duplicate suppression for the
//!   control plane under an armed fault plan;
//! * [`msgmodel`] — the analytic message-complexity model of §2.1.
//!
//! # Examples
//!
//! A two-process cluster where a client invokes a service Request:
//!
//! ```
//! use fractos_core::prelude::*;
//!
//! struct Echo { hits: u32 }
//! impl Service for Echo {
//!     fn on_start(&mut self, fos: &Fos<Self>) {
//!         // Publish an RPC endpoint.
//!         fos.request_create_new(7, vec![], vec![], |_s, res, fos| {
//!             fos.kv_put("echo", res.cid(), |_, _, _| {});
//!         });
//!     }
//!     fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
//!         assert_eq!(req.tag, 7);
//!         self.hits += 1;
//!     }
//! }
//!
//! struct Client;
//! impl Service for Client {
//!     fn on_start(&mut self, fos: &Fos<Self>) {
//!         fos.kv_get("echo", |_s, res, fos| {
//!             fos.request_invoke(res.cid(), |_, _, _| {});
//!         });
//!     }
//!     fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
//! }
//!
//! let mut tb = Testbed::paper(42);
//! let ctrls = tb.controllers_per_node(false);
//! let svc = tb.add_process("echo", cpu(0), ctrls[0], Echo { hits: 0 });
//! let cli = tb.add_process("client", cpu(1), ctrls[1], Client);
//! tb.start_process(svc);
//! tb.run();
//! tb.start_process(cli);
//! tb.run();
//! tb.with_service::<Echo, _>(svc, |e| assert_eq!(e.hits, 1));
//! ```

pub mod controller;
pub mod directory;
pub mod integrity;
pub mod memstore;
pub mod messages;
pub mod msgmodel;
pub mod process;
pub mod retry;
pub mod testbed;
pub mod types;
pub mod verify;
pub mod watchdog;
pub mod wire;
pub mod wire_peer;

/// Everything a service implementation typically needs.
pub mod prelude {
    pub use fractos_cap::{CapError, Cid, ControllerAddr, Perms};
    pub use fractos_net::{Endpoint, Location, NodeId, Payload};
    pub use fractos_sim::{Runtime, RuntimeExt, RuntimeKind, SimDuration, SimTime};

    pub use crate::controller::ControllerActor;
    pub use crate::process::{Fos, NullService, ProcessActor, Service};
    pub use crate::testbed::{cpu, gpu, nvme, CtrlPlacement, Testbed};
    pub use crate::types::{FosError, IncomingRequest, MonitorCb, ProcId, Syscall, SyscallResult};
}

pub use controller::ControllerActor;
pub use directory::{Directory, ServiceInstance};
pub use integrity::{flip_bit, fnv1a, ExtentSums};
pub use memstore::MemoryStore;
pub use process::{Fos, NullService, ProcessActor, Service};
pub use testbed::{CtrlPlacement, Testbed};
pub use types::{
    FosError, IncomingRequest, MemoryDesc, MonitorCb, ObjPayload, ProcId, RequestDesc, Syscall,
    SyscallResult,
};
pub use verify::{
    verify_plan, verify_syscall, verify_table, PlanPath, PlanReport, PlanStep, VerifyError,
    VerifyErrorKind,
};
pub use watchdog::WatchdogActor;
