//! Cluster directory: who runs where, and what is still alive.
//!
//! In the prototype this knowledge comes from the trusted bootstrapping and
//! discovery service Controllers register with (§3.2). The simulation keeps
//! it in one shared structure: actors consult it to translate a `ProcId` or
//! `ControllerAddr` into a simulation actor and a fabric endpoint, exactly
//! like an established connection table. Liveness flags are flipped by the
//! failure-injection API and the watchdog.

use std::collections::{BTreeMap, BTreeSet};

use fractos_cap::ControllerAddr;
use fractos_net::{ComputeDomain, Endpoint};
use fractos_sim::ActorId;

use crate::types::ProcId;

/// Directory entry for a Process.
#[derive(Debug, Clone)]
pub struct ProcEntry {
    /// The Controller managing this Process.
    pub ctrl: ControllerAddr,
    /// The simulation actor implementing it.
    pub actor: ActorId,
    /// Where it runs.
    pub endpoint: Endpoint,
    /// Human-readable name.
    pub name: String,
    /// Whether the Process is alive.
    pub alive: bool,
}

/// Directory entry for a Controller.
#[derive(Debug, Clone)]
pub struct CtrlEntry {
    /// The simulation actor implementing it.
    pub actor: ActorId,
    /// Where it runs (host CPU or SmartNIC).
    pub endpoint: Endpoint,
    /// Execution domain (scales software costs).
    pub domain: ComputeDomain,
    /// Whether the Controller is alive.
    pub alive: bool,
}

/// One replicated instance of a named service (§3.6 failover): the
/// providing Process and the Controller that manages it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceInstance {
    /// The Process providing the service.
    pub proc: ProcId,
    /// Its managing Controller.
    pub ctrl: ControllerAddr,
}

/// The shared cluster directory.
#[derive(Debug, Default)]
pub struct Directory {
    // BTreeMaps: `procs_of`/`all_ctrls` enumerate these, and enumeration
    // order feeds failure fan-out — it must not depend on hasher state.
    procs: BTreeMap<ProcId, ProcEntry>,
    ctrls: BTreeMap<ControllerAddr, CtrlEntry>,
    next_proc: u32,
    next_ctrl: u32,
    /// Per-Controller death epoch: bumped by every death declaration.
    /// Capabilities minted before a Controller's current death epoch are
    /// treated as revoked by every survivor (§3.6); the Controller's own
    /// capability table bumps its reboot epoch independently on restart.
    death_epochs: BTreeMap<ControllerAddr, u64>,
    /// Controllers currently declared dead by the failure detector. The
    /// flag is authoritative for failover routing; it coexists with
    /// `CtrlEntry::alive` (the ground truth only the node itself flips)
    /// because a declared-dead-but-partitioned Controller keeps serving
    /// its same-node Processes until the verdict is withdrawn.
    declared_dead: BTreeSet<ControllerAddr>,
    /// Replicated service registry: instances in registration order, which
    /// is the deterministic failover preference order.
    services: BTreeMap<String, Vec<ServiceInstance>>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Registers a Controller, assigning its address.
    pub fn register_ctrl(
        &mut self,
        actor: ActorId,
        endpoint: Endpoint,
        domain: ComputeDomain,
    ) -> ControllerAddr {
        let addr = ControllerAddr(self.next_ctrl);
        self.next_ctrl += 1;
        self.ctrls.insert(
            addr,
            CtrlEntry {
                actor,
                endpoint,
                domain,
                alive: true,
            },
        );
        addr
    }

    /// Registers a Process managed by `ctrl`.
    pub fn register_proc(
        &mut self,
        name: &str,
        actor: ActorId,
        endpoint: Endpoint,
        ctrl: ControllerAddr,
    ) -> ProcId {
        let id = ProcId(self.next_proc);
        self.next_proc += 1;
        self.procs.insert(
            id,
            ProcEntry {
                ctrl,
                actor,
                endpoint,
                name: name.to_string(),
                alive: true,
            },
        );
        id
    }

    /// Looks up a Process.
    pub fn proc(&self, id: ProcId) -> Option<&ProcEntry> {
        self.procs.get(&id)
    }

    /// Fixes up the actor id of a Controller registered before its actor
    /// existed (two-phase testbed wiring).
    pub fn set_ctrl_actor(&mut self, addr: ControllerAddr, actor: ActorId) {
        if let Some(c) = self.ctrls.get_mut(&addr) {
            c.actor = actor;
        }
    }

    /// Fixes up the actor id of a Process registered before its actor
    /// existed (two-phase testbed wiring).
    pub fn set_proc_actor(&mut self, id: ProcId, actor: ActorId) {
        if let Some(p) = self.procs.get_mut(&id) {
            p.actor = actor;
        }
    }

    /// Looks up a Controller.
    pub fn ctrl(&self, addr: ControllerAddr) -> Option<&CtrlEntry> {
        self.ctrls.get(&addr)
    }

    /// Marks a Process dead.
    pub fn kill_proc(&mut self, id: ProcId) {
        if let Some(p) = self.procs.get_mut(&id) {
            p.alive = false;
        }
    }

    /// Marks a Controller dead.
    pub fn kill_ctrl(&mut self, addr: ControllerAddr) {
        if let Some(c) = self.ctrls.get_mut(&addr) {
            c.alive = false;
        }
    }

    /// Marks a Controller alive again (reboot). The reboot also clears any
    /// standing death verdict: the node is genuinely back (with a fresh
    /// capability epoch), so failover routing may use it again.
    pub fn revive_ctrl(&mut self, addr: ControllerAddr) {
        if let Some(c) = self.ctrls.get_mut(&addr) {
            c.alive = true;
        }
        self.declared_dead.remove(&addr);
    }

    /// Records the failure detector's death verdict for `addr`: bumps its
    /// death epoch and marks it declared dead for routing. Returns the new
    /// death epoch.
    pub fn declare_ctrl_dead(&mut self, addr: ControllerAddr) -> u64 {
        let e = self.death_epochs.entry(addr).or_insert(0);
        *e += 1;
        self.declared_dead.insert(addr);
        *e
    }

    /// Withdraws a death verdict (a healed partition, or a crash-restart
    /// coming back with a fresh epoch).
    pub fn declare_ctrl_recovered(&mut self, addr: ControllerAddr) {
        self.declared_dead.remove(&addr);
    }

    /// The number of death declarations `addr` has accumulated (0 when it
    /// was never declared dead).
    pub fn death_epoch(&self, addr: ControllerAddr) -> u64 {
        self.death_epochs.get(&addr).copied().unwrap_or(0)
    }

    /// True while the failure detector's death verdict on `addr` stands.
    pub fn is_declared_dead(&self, addr: ControllerAddr) -> bool {
        self.declared_dead.contains(&addr)
    }

    /// Registers one instance of the replicated service `name`.
    /// Registration order is the failover preference order.
    pub fn register_service_instance(&mut self, name: &str, proc: ProcId, ctrl: ControllerAddr) {
        self.services
            .entry(name.to_string())
            .or_default()
            .push(ServiceInstance { proc, ctrl });
    }

    /// All registered instances of `name`, in registration order.
    pub fn service_instances(&self, name: &str) -> Vec<ServiceInstance> {
        self.services.get(name).cloned().unwrap_or_default()
    }

    /// Deterministic failover routing: the first registered instance of
    /// `name` whose Process and Controller are both alive and whose
    /// Controller is not under a standing death verdict. Every consumer
    /// that applies this rule to the same directory state picks the same
    /// survivor.
    pub fn service_route(&self, name: &str) -> Option<ServiceInstance> {
        self.services.get(name)?.iter().copied().find(|inst| {
            let proc_ok = self.procs.get(&inst.proc).is_some_and(|p| p.alive);
            let ctrl_ok = self.ctrls.get(&inst.ctrl).is_some_and(|c| c.alive);
            proc_ok && ctrl_ok && !self.declared_dead.contains(&inst.ctrl)
        })
    }

    /// All Processes managed by `ctrl`, in id order.
    pub fn procs_of(&self, ctrl: ControllerAddr) -> Vec<ProcId> {
        self.procs
            .iter()
            .filter(|(_, e)| e.ctrl == ctrl)
            .map(|(id, _)| *id)
            .collect()
    }

    /// All registered Controllers, in address order.
    pub fn all_ctrls(&self) -> Vec<ControllerAddr> {
        self.ctrls.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_net::NodeId;

    #[test]
    fn registration_assigns_sequential_ids() {
        let mut d = Directory::new();
        let c0 = d.register_ctrl(
            ActorId::from_raw(0),
            Endpoint::cpu(NodeId(0)),
            ComputeDomain::HostCpu,
        );
        let c1 = d.register_ctrl(
            ActorId::from_raw(1),
            Endpoint::snic(NodeId(1)),
            ComputeDomain::SmartNic,
        );
        assert_eq!(c0, ControllerAddr(0));
        assert_eq!(c1, ControllerAddr(1));
        let p0 = d.register_proc("app", ActorId::from_raw(2), Endpoint::cpu(NodeId(0)), c0);
        let p1 = d.register_proc("gpu", ActorId::from_raw(3), Endpoint::cpu(NodeId(1)), c1);
        assert_eq!(p0, ProcId(0));
        assert_eq!(d.proc(p1).unwrap().ctrl, c1);
        assert_eq!(d.procs_of(c0), vec![p0]);
        assert_eq!(d.all_ctrls(), vec![c0, c1]);
    }

    #[test]
    fn death_epochs_and_verdicts() {
        let mut d = Directory::new();
        let c = d.register_ctrl(
            ActorId::from_raw(0),
            Endpoint::cpu(NodeId(0)),
            ComputeDomain::HostCpu,
        );
        assert_eq!(d.death_epoch(c), 0);
        assert!(!d.is_declared_dead(c));
        assert_eq!(d.declare_ctrl_dead(c), 1);
        assert!(d.is_declared_dead(c));
        d.declare_ctrl_recovered(c);
        assert!(!d.is_declared_dead(c));
        // Epochs only ever advance — a second death is a new epoch.
        assert_eq!(d.declare_ctrl_dead(c), 2);
        // A reboot also withdraws the verdict.
        d.revive_ctrl(c);
        assert!(!d.is_declared_dead(c));
        assert_eq!(d.death_epoch(c), 2);
    }

    #[test]
    fn service_route_prefers_registration_order_and_skips_dead() {
        let mut d = Directory::new();
        let c0 = d.register_ctrl(
            ActorId::from_raw(0),
            Endpoint::cpu(NodeId(0)),
            ComputeDomain::HostCpu,
        );
        let c1 = d.register_ctrl(
            ActorId::from_raw(1),
            Endpoint::cpu(NodeId(1)),
            ComputeDomain::HostCpu,
        );
        let p0 = d.register_proc("svc.0", ActorId::from_raw(2), Endpoint::cpu(NodeId(0)), c0);
        let p1 = d.register_proc("svc.1", ActorId::from_raw(3), Endpoint::cpu(NodeId(1)), c1);
        d.register_service_instance("svc", p0, c0);
        d.register_service_instance("svc", p1, c1);
        assert_eq!(d.service_instances("svc").len(), 2);
        // Healthy: first registered wins.
        assert_eq!(d.service_route("svc").unwrap().proc, p0);
        // A standing death verdict re-homes to the survivor.
        d.declare_ctrl_dead(c0);
        assert_eq!(d.service_route("svc").unwrap().proc, p1);
        d.declare_ctrl_recovered(c0);
        assert_eq!(d.service_route("svc").unwrap().proc, p0);
        // A dead Process also disqualifies its instance.
        d.kill_proc(p0);
        assert_eq!(d.service_route("svc").unwrap().proc, p1);
        // No survivors: no route.
        d.kill_ctrl(c1);
        assert_eq!(d.service_route("svc"), None);
        assert_eq!(d.service_route("nope"), None);
    }

    #[test]
    fn liveness_flags() {
        let mut d = Directory::new();
        let c = d.register_ctrl(
            ActorId::from_raw(0),
            Endpoint::cpu(NodeId(0)),
            ComputeDomain::HostCpu,
        );
        let p = d.register_proc("x", ActorId::from_raw(1), Endpoint::cpu(NodeId(0)), c);
        assert!(d.proc(p).unwrap().alive);
        d.kill_proc(p);
        assert!(!d.proc(p).unwrap().alive);
        d.kill_ctrl(c);
        assert!(!d.ctrl(c).unwrap().alive);
        d.revive_ctrl(c);
        assert!(d.ctrl(c).unwrap().alive);
    }
}
