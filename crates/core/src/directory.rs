//! Cluster directory: who runs where, and what is still alive.
//!
//! In the prototype this knowledge comes from the trusted bootstrapping and
//! discovery service Controllers register with (§3.2). The simulation keeps
//! it in one shared structure: actors consult it to translate a `ProcId` or
//! `ControllerAddr` into a simulation actor and a fabric endpoint, exactly
//! like an established connection table. Liveness flags are flipped by the
//! failure-injection API and the watchdog.

use std::collections::BTreeMap;

use fractos_cap::ControllerAddr;
use fractos_net::{ComputeDomain, Endpoint};
use fractos_sim::ActorId;

use crate::types::ProcId;

/// Directory entry for a Process.
#[derive(Debug, Clone)]
pub struct ProcEntry {
    /// The Controller managing this Process.
    pub ctrl: ControllerAddr,
    /// The simulation actor implementing it.
    pub actor: ActorId,
    /// Where it runs.
    pub endpoint: Endpoint,
    /// Human-readable name.
    pub name: String,
    /// Whether the Process is alive.
    pub alive: bool,
}

/// Directory entry for a Controller.
#[derive(Debug, Clone)]
pub struct CtrlEntry {
    /// The simulation actor implementing it.
    pub actor: ActorId,
    /// Where it runs (host CPU or SmartNIC).
    pub endpoint: Endpoint,
    /// Execution domain (scales software costs).
    pub domain: ComputeDomain,
    /// Whether the Controller is alive.
    pub alive: bool,
}

/// The shared cluster directory.
#[derive(Debug, Default)]
pub struct Directory {
    // BTreeMaps: `procs_of`/`all_ctrls` enumerate these, and enumeration
    // order feeds failure fan-out — it must not depend on hasher state.
    procs: BTreeMap<ProcId, ProcEntry>,
    ctrls: BTreeMap<ControllerAddr, CtrlEntry>,
    next_proc: u32,
    next_ctrl: u32,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Registers a Controller, assigning its address.
    pub fn register_ctrl(
        &mut self,
        actor: ActorId,
        endpoint: Endpoint,
        domain: ComputeDomain,
    ) -> ControllerAddr {
        let addr = ControllerAddr(self.next_ctrl);
        self.next_ctrl += 1;
        self.ctrls.insert(
            addr,
            CtrlEntry {
                actor,
                endpoint,
                domain,
                alive: true,
            },
        );
        addr
    }

    /// Registers a Process managed by `ctrl`.
    pub fn register_proc(
        &mut self,
        name: &str,
        actor: ActorId,
        endpoint: Endpoint,
        ctrl: ControllerAddr,
    ) -> ProcId {
        let id = ProcId(self.next_proc);
        self.next_proc += 1;
        self.procs.insert(
            id,
            ProcEntry {
                ctrl,
                actor,
                endpoint,
                name: name.to_string(),
                alive: true,
            },
        );
        id
    }

    /// Looks up a Process.
    pub fn proc(&self, id: ProcId) -> Option<&ProcEntry> {
        self.procs.get(&id)
    }

    /// Fixes up the actor id of a Controller registered before its actor
    /// existed (two-phase testbed wiring).
    pub fn set_ctrl_actor(&mut self, addr: ControllerAddr, actor: ActorId) {
        if let Some(c) = self.ctrls.get_mut(&addr) {
            c.actor = actor;
        }
    }

    /// Fixes up the actor id of a Process registered before its actor
    /// existed (two-phase testbed wiring).
    pub fn set_proc_actor(&mut self, id: ProcId, actor: ActorId) {
        if let Some(p) = self.procs.get_mut(&id) {
            p.actor = actor;
        }
    }

    /// Looks up a Controller.
    pub fn ctrl(&self, addr: ControllerAddr) -> Option<&CtrlEntry> {
        self.ctrls.get(&addr)
    }

    /// Marks a Process dead.
    pub fn kill_proc(&mut self, id: ProcId) {
        if let Some(p) = self.procs.get_mut(&id) {
            p.alive = false;
        }
    }

    /// Marks a Controller dead.
    pub fn kill_ctrl(&mut self, addr: ControllerAddr) {
        if let Some(c) = self.ctrls.get_mut(&addr) {
            c.alive = false;
        }
    }

    /// Marks a Controller alive again (reboot).
    pub fn revive_ctrl(&mut self, addr: ControllerAddr) {
        if let Some(c) = self.ctrls.get_mut(&addr) {
            c.alive = true;
        }
    }

    /// All Processes managed by `ctrl`, in id order.
    pub fn procs_of(&self, ctrl: ControllerAddr) -> Vec<ProcId> {
        self.procs
            .iter()
            .filter(|(_, e)| e.ctrl == ctrl)
            .map(|(id, _)| *id)
            .collect()
    }

    /// All registered Controllers, in address order.
    pub fn all_ctrls(&self) -> Vec<ControllerAddr> {
        self.ctrls.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_net::NodeId;

    #[test]
    fn registration_assigns_sequential_ids() {
        let mut d = Directory::new();
        let c0 = d.register_ctrl(
            ActorId::from_raw(0),
            Endpoint::cpu(NodeId(0)),
            ComputeDomain::HostCpu,
        );
        let c1 = d.register_ctrl(
            ActorId::from_raw(1),
            Endpoint::snic(NodeId(1)),
            ComputeDomain::SmartNic,
        );
        assert_eq!(c0, ControllerAddr(0));
        assert_eq!(c1, ControllerAddr(1));
        let p0 = d.register_proc("app", ActorId::from_raw(2), Endpoint::cpu(NodeId(0)), c0);
        let p1 = d.register_proc("gpu", ActorId::from_raw(3), Endpoint::cpu(NodeId(1)), c1);
        assert_eq!(p0, ProcId(0));
        assert_eq!(d.proc(p1).unwrap().ctrl, c1);
        assert_eq!(d.procs_of(c0), vec![p0]);
        assert_eq!(d.all_ctrls(), vec![c0, c1]);
    }

    #[test]
    fn liveness_flags() {
        let mut d = Directory::new();
        let c = d.register_ctrl(
            ActorId::from_raw(0),
            Endpoint::cpu(NodeId(0)),
            ComputeDomain::HostCpu,
        );
        let p = d.register_proc("x", ActorId::from_raw(1), Endpoint::cpu(NodeId(0)), c);
        assert!(d.proc(p).unwrap().alive);
        d.kill_proc(p);
        assert!(!d.proc(p).unwrap().alive);
        d.kill_ctrl(c);
        assert!(!d.ctrl(c).unwrap().alive);
        d.revive_ctrl(c);
        assert!(d.ctrl(c).unwrap().alive);
    }
}
