//! Static verification of Request programs (§3.3–§3.4 least privilege,
//! checked *before* dispatch).
//!
//! A FractOS execution plan is a continuation DAG of Request objects: the
//! root Request's capability arguments may themselves reference Request
//! objects (continuations handed to the provider), which in turn carry
//! their own arguments. Today's runtime catches a malformed or
//! over-privileged plan only mid-flight, as a typed error at the operation
//! that trips over it. This module checks the whole plan statically:
//!
//! 1. **Resolution** — every capability embedded in the plan resolves at
//!    its owner: the object exists ([`VerifyErrorKind::DanglingCap`]), is
//!    not revoked ([`VerifyErrorKind::RevokedCap`]) and its epoch is live
//!    ([`VerifyErrorKind::StaleEpoch`], no use-after-reboot).
//! 2. **Shape** — the continuation graph is acyclic
//!    ([`VerifyErrorKind::CyclicContinuation`]). Reachability is by
//!    construction: the walk *defines* the plan as everything reachable
//!    from the root, so an unreachable node cannot be part of the plan.
//! 3. **Privilege monotonicity** — along every derivation edge a child
//!    never holds more than its parent granted (§3.3): a diminished
//!    Memory view must stay within its parent's extent and permissions
//!    ([`VerifyErrorKind::PrivilegeEscalation`]), a refined Request must
//!    extend its base append-only with the same provider and tag
//!    ([`VerifyErrorKind::RefinementViolation`], §3.4), and a Memory
//!    snapshot carried in an argument must not claim permissions the live
//!    object does not grant.
//! 4. **Syscall permissions** — [`verify_syscall`] checks the read/write
//!    permissions a syscall needs against the caller's capability space
//!    before the operation is attempted ([`VerifyErrorKind::MissingPerm`]).
//!
//! Verification is *pure*: it reads the owner's [`ObjectTable`] and
//! charges no simulated time, sends no messages and records no spans, so
//! enabling it perturbs neither latency anchors nor traces. Capabilities
//! owned by a *remote* Controller are skipped (and counted in
//! [`PlanReport::remote_skipped`]): each Controller verifies what it owns,
//! which is exactly the paper's owner-centric trust argument — running the
//! same check at submission and again at admission gives defense in depth
//! without a global view.

use core::fmt;

use fractos_cap::{CapError, CapRef, Cid, ObjectId, ObjectTable, Perms};

use crate::types::{Arg, MemoryDesc, ObjPayload, RequestDesc, Syscall};

/// What went wrong, as a typed diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// A capability in the plan references an object its owner does not
    /// have (a dangling reference).
    DanglingCap,
    /// A capability in the plan references a revoked object
    /// (use-after-revoke).
    RevokedCap,
    /// A capability was minted under an earlier reboot epoch of its owner
    /// and is implicitly revoked (§3.6).
    StaleEpoch,
    /// The continuation graph contains a cycle: a Request reaches itself
    /// through its own argument chain.
    CyclicContinuation,
    /// A node holds privilege its derivation parent never granted: a
    /// Memory view wider (in extent or permissions) than its parent, or a
    /// snapshot claiming permissions the live object does not hold.
    PrivilegeEscalation,
    /// A derived Request does not extend its base append-only (§3.4), or
    /// changes the provider/tag of the base.
    RefinementViolation,
    /// A syscall requires a permission the capability does not hold
    /// (e.g. `memory_copy` needs READ on the source, WRITE on the
    /// destination).
    MissingPerm(Perms),
    /// The plan expects one kind of object (Memory/Request) and found the
    /// other.
    WrongObjectKind,
}

impl fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyErrorKind::DanglingCap => write!(f, "dangling capability"),
            VerifyErrorKind::RevokedCap => write!(f, "revoked capability"),
            VerifyErrorKind::StaleEpoch => write!(f, "stale-epoch capability"),
            VerifyErrorKind::CyclicContinuation => write!(f, "cyclic continuation chain"),
            VerifyErrorKind::PrivilegeEscalation => write!(f, "privilege escalation"),
            VerifyErrorKind::RefinementViolation => write!(f, "refinement violation"),
            VerifyErrorKind::MissingPerm(p) => write!(f, "missing permission {p:?}"),
            VerifyErrorKind::WrongObjectKind => write!(f, "wrong object kind"),
        }
    }
}

/// One step of the path from the plan root to the offending node: which
/// object the walk was in, and which argument index it descended through
/// (`None` for the root itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// Object the walk visited.
    pub object: ObjectId,
    /// Argument index descended through to reach the *next* step, if any.
    pub arg: Option<u32>,
}

/// Span-style context: the chain of plan nodes and argument indices from
/// the root to the defect, so a diagnostic reads like
/// `obj#3 / arg[2] -> obj#9 / arg[0] -> obj#12: revoked capability`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanPath(pub Vec<PlanStep>);

impl PlanPath {
    fn root(object: ObjectId) -> Self {
        PlanPath(vec![PlanStep { object, arg: None }])
    }

    fn descend(&self, arg: u32, object: ObjectId) -> Self {
        let mut steps = self.0.clone();
        if let Some(last) = steps.last_mut() {
            last.arg = Some(arg);
        }
        steps.push(PlanStep { object, arg: None });
        PlanPath(steps)
    }

    fn at_arg(&self, arg: u32) -> Self {
        let mut steps = self.0.clone();
        if let Some(last) = steps.last_mut() {
            last.arg = Some(arg);
        }
        PlanPath(steps)
    }
}

impl fmt::Display for PlanPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "obj#{}", step.object.0)?;
            if let Some(a) = step.arg {
                write!(f, " / arg[{a}]")?;
            }
        }
        Ok(())
    }
}

/// A rejected plan: the typed defect plus where in the plan it sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The defect.
    pub kind: VerifyErrorKind,
    /// Root-to-defect chain of plan nodes.
    pub path: PlanPath,
}

impl VerifyError {
    fn new(kind: VerifyErrorKind, path: PlanPath) -> Self {
        VerifyError { kind, path }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan rejected at {}: {}", self.path, self.kind)
    }
}

impl std::error::Error for VerifyError {}

/// What a successful verification covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanReport {
    /// Request nodes visited (the root plus every continuation).
    pub nodes: u32,
    /// Capability arguments checked for liveness.
    pub caps_checked: u32,
    /// Capability arguments owned by other Controllers, skipped here and
    /// verified at their owner on admission.
    pub remote_skipped: u32,
}

fn cap_err_kind(e: CapError) -> VerifyErrorKind {
    match e {
        CapError::NoSuchObject(_) | CapError::BadCid(_) => VerifyErrorKind::DanglingCap,
        CapError::Revoked(_) => VerifyErrorKind::RevokedCap,
        CapError::StaleEpoch(_) => VerifyErrorKind::StaleEpoch,
        _ => VerifyErrorKind::DanglingCap,
    }
}

/// Verifies the Request plan rooted at `root` against its owner's table.
///
/// A `root` owned by a *different* Controller than `table` carries no
/// local plan state: it is skipped entirely (counted in
/// [`PlanReport::remote_skipped`]) and verified by its owner on admission.
/// Nested capabilities owned by other Controllers are skipped the same
/// way.
pub fn verify_plan(
    table: &ObjectTable<ObjPayload>,
    root: CapRef,
) -> Result<PlanReport, VerifyError> {
    let mut report = PlanReport::default();
    if root.ctrl != table.ctrl() {
        report.remote_skipped += 1;
        return Ok(report);
    }
    let path = PlanPath::root(root.object);
    let desc = resolve_request(table, root, &path)?;
    let mut on_path = vec![root.object];
    let mut visited = Vec::new();
    walk_request(
        table,
        root,
        &desc,
        path,
        &mut on_path,
        &mut visited,
        &mut report,
    )?;
    Ok(report)
}

fn resolve_request(
    table: &ObjectTable<ObjPayload>,
    cap: CapRef,
    path: &PlanPath,
) -> Result<RequestDesc, VerifyError> {
    table
        .check(cap)
        .map_err(|e| VerifyError::new(cap_err_kind(e), path.clone()))?;
    match table.resolve(cap) {
        Ok(ObjPayload::Request(r)) => Ok(r.clone()),
        Ok(ObjPayload::Memory(_)) => Err(VerifyError::new(
            VerifyErrorKind::WrongObjectKind,
            path.clone(),
        )),
        Err(e) => Err(VerifyError::new(cap_err_kind(e), path.clone())),
    }
}

#[allow(clippy::too_many_arguments)] // recursive walker threading its state
fn walk_request(
    table: &ObjectTable<ObjPayload>,
    cap: CapRef,
    desc: &RequestDesc,
    path: PlanPath,
    on_path: &mut Vec<ObjectId>,
    visited: &mut Vec<ObjectId>,
    report: &mut PlanReport,
) -> Result<(), VerifyError> {
    report.nodes += 1;
    check_refinement_chain(table, cap, desc, &path)?;
    for (i, arg) in desc.args.iter().enumerate() {
        let i = i as u32;
        let Arg::Cap(ca) = arg else { continue };
        if ca.cap.ctrl != table.ctrl() {
            // Owned elsewhere: that Controller verifies it on admission.
            report.remote_skipped += 1;
            continue;
        }
        report.caps_checked += 1;
        let arg_path = path.at_arg(i);
        table
            .check(ca.cap)
            .map_err(|e| VerifyError::new(cap_err_kind(e), arg_path.clone()))?;
        match table.resolve(ca.cap) {
            Ok(ObjPayload::Memory(live)) => {
                check_memory_arg(table, ca.cap, ca.mem.as_ref(), live, &arg_path)?;
            }
            Ok(ObjPayload::Request(nested)) => {
                if on_path.contains(&ca.cap.object) {
                    return Err(VerifyError::new(
                        VerifyErrorKind::CyclicContinuation,
                        arg_path,
                    ));
                }
                if visited.contains(&ca.cap.object) {
                    // Shared continuation (diamond in the DAG): already
                    // verified through another path.
                    continue;
                }
                let nested = nested.clone();
                let nested_path = path.descend(i, ca.cap.object);
                on_path.push(ca.cap.object);
                walk_request(
                    table,
                    ca.cap,
                    &nested,
                    nested_path,
                    on_path,
                    visited,
                    report,
                )?;
                on_path.pop();
                visited.push(ca.cap.object);
            }
            Err(e) => return Err(VerifyError::new(cap_err_kind(e), arg_path)),
        }
    }
    Ok(())
}

/// A Memory argument is sound if its snapshot (the descriptor riding the
/// Request so the data plane needs no owner round trip) claims no more
/// than the live object grants, and the live object claims no more than
/// its derivation parent granted.
fn check_memory_arg(
    table: &ObjectTable<ObjPayload>,
    cap: CapRef,
    snap: Option<&MemoryDesc>,
    live: &MemoryDesc,
    path: &PlanPath,
) -> Result<(), VerifyError> {
    if let Some(snap) = snap {
        if !live.perms.contains(snap.perms) {
            return Err(VerifyError::new(
                VerifyErrorKind::PrivilegeEscalation,
                path.clone(),
            ));
        }
    }
    // Walk derivation edges up to the root, proving monotonicity at each.
    let mut child = live.clone();
    let mut id = match table.resolve_owner_object(cap) {
        Ok(id) => id,
        Err(e) => return Err(VerifyError::new(cap_err_kind(e), path.clone())),
    };
    loop {
        let parent_id = match table.parent_of(id) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(e) => return Err(VerifyError::new(cap_err_kind(e), path.clone())),
        };
        let parent_ref = CapRef {
            ctrl: table.ctrl(),
            epoch: cap.epoch,
            object: parent_id,
        };
        match table.resolve(parent_ref) {
            Ok(ObjPayload::Memory(parent)) => {
                if !parent.perms.contains(child.perms) {
                    return Err(VerifyError::new(
                        VerifyErrorKind::PrivilegeEscalation,
                        path.clone(),
                    ));
                }
                let child_end = child.view_off.saturating_add(child.size);
                let parent_end = parent.view_off.saturating_add(parent.size);
                if child.view_off < parent.view_off
                    || child_end > parent_end
                    || child.proc != parent.proc
                    || child.addr != parent.addr
                {
                    return Err(VerifyError::new(
                        VerifyErrorKind::PrivilegeEscalation,
                        path.clone(),
                    ));
                }
                child = parent.clone();
                id = parent_id;
            }
            // A Memory derived from a Request makes no sense; a revtree
            // indirection node shares the same owner object, so resolve
            // lands on the same payload and terminates via parent_of.
            Ok(ObjPayload::Request(_)) => {
                return Err(VerifyError::new(
                    VerifyErrorKind::WrongObjectKind,
                    path.clone(),
                ))
            }
            Err(_) => return Ok(()), // parent revoked away already: child is the root view now
        }
    }
}

/// A derived Request must extend its base append-only with the same
/// provider and tag (§3.4's refinement security property).
fn check_refinement_chain(
    table: &ObjectTable<ObjPayload>,
    cap: CapRef,
    desc: &RequestDesc,
    path: &PlanPath,
) -> Result<(), VerifyError> {
    let id = match table.resolve_owner_object(cap) {
        Ok(id) => id,
        Err(e) => return Err(VerifyError::new(cap_err_kind(e), path.clone())),
    };
    let parent_id = match table.parent_of(id) {
        Ok(Some(p)) => p,
        Ok(None) => return Ok(()),
        Err(e) => return Err(VerifyError::new(cap_err_kind(e), path.clone())),
    };
    let parent_ref = CapRef {
        ctrl: table.ctrl(),
        epoch: cap.epoch,
        object: parent_id,
    };
    match table.resolve(parent_ref) {
        Ok(ObjPayload::Request(base)) => {
            let prefix_ok =
                desc.args.len() >= base.args.len() && desc.args[..base.args.len()] == base.args[..];
            if !prefix_ok || desc.provider != base.provider || desc.tag != base.tag {
                return Err(VerifyError::new(
                    VerifyErrorKind::RefinementViolation,
                    path.clone(),
                ));
            }
            Ok(())
        }
        // A Request derived from a Memory object is malformed.
        Ok(ObjPayload::Memory(_)) => Err(VerifyError::new(
            VerifyErrorKind::WrongObjectKind,
            path.clone(),
        )),
        Err(_) => Ok(()), // base already cleaned up: nothing left to compare
    }
}

/// Checks the read/write permissions a syscall needs against the caller's
/// capability snapshots, before the operation is dispatched.
///
/// `lookup` resolves a `cid` in the calling Process's capability space to
/// its Memory snapshot, if it has one; `None` means the capability either
/// does not resolve (the runtime rejects it with its own typed error) or
/// is not Memory-backed — both outside this check's scope.
pub fn verify_syscall(
    sc: &Syscall,
    mut lookup: impl FnMut(Cid) -> Option<MemoryDesc>,
) -> Result<(), VerifyError> {
    match sc {
        Syscall::MemoryCopy { src, dst } => {
            if let Some(s) = lookup(*src) {
                if !s.perms.can_read() {
                    return Err(VerifyError::new(
                        VerifyErrorKind::MissingPerm(Perms::READ),
                        PlanPath::default(),
                    ));
                }
            }
            if let Some(d) = lookup(*dst) {
                if !d.perms.can_write() {
                    return Err(VerifyError::new(
                        VerifyErrorKind::MissingPerm(Perms::WRITE),
                        PlanPath::default(),
                    ));
                }
            }
            Ok(())
        }
        Syscall::MemoryDiminish {
            cid, offset, size, ..
        } => {
            if let Some(s) = lookup(*cid) {
                if offset.saturating_add(*size) > s.size {
                    return Err(VerifyError::new(
                        VerifyErrorKind::PrivilegeEscalation,
                        PlanPath::default(),
                    ));
                }
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Verifies every live Request object in `table` as a plan root.
///
/// This is the library entry point harnesses use to prove that *every*
/// application plan in a running cluster verifies clean; returns the
/// number of plans checked or the first defect found.
pub fn verify_table(table: &ObjectTable<ObjPayload>) -> Result<usize, VerifyError> {
    let epoch = table.epoch();
    let mut checked = 0;
    for id in table.live_objects() {
        let cap = CapRef {
            ctrl: table.ctrl(),
            epoch,
            object: id,
        };
        if matches!(table.resolve(cap), Ok(ObjPayload::Request(_))) {
            verify_plan(table, cap)?;
            checked += 1;
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CapArg;
    use fractos_cap::{ControllerAddr, Epoch};
    use fractos_net::{Endpoint, NodeId};

    const CTRL: ControllerAddr = ControllerAddr(0);

    fn mem(perms: Perms, off: u64, size: u64) -> MemoryDesc {
        MemoryDesc {
            proc: crate::types::ProcId(1),
            location: Endpoint::cpu(NodeId(0)),
            addr: 0x1000,
            view_off: off,
            size,
            perms,
        }
    }

    fn table() -> ObjectTable<ObjPayload> {
        ObjectTable::new(CTRL)
    }

    fn req(provider: u32, tag: u64, args: Vec<Arg>) -> ObjPayload {
        ObjPayload::Request(RequestDesc {
            provider: crate::types::ProcId(provider),
            tag,
            args,
        })
    }

    #[test]
    fn empty_plan_verifies() {
        let mut t = table();
        let root = t.create(crate::types::ProcId(1).token(), req(1, 7, vec![]));
        let r = verify_plan(&t, root).unwrap();
        assert_eq!(r.nodes, 1);
        assert_eq!(r.caps_checked, 0);
    }

    #[test]
    fn plan_with_live_memory_verifies() {
        let mut t = table();
        let m = t.create(
            crate::types::ProcId(1).token(),
            ObjPayload::Memory(mem(Perms::RW, 0, 64)),
        );
        let root = t.create(
            crate::types::ProcId(1).token(),
            req(
                1,
                7,
                vec![Arg::Cap(CapArg {
                    cap: m,
                    mem: Some(mem(Perms::RW, 0, 64)),
                })],
            ),
        );
        let r = verify_plan(&t, root).unwrap();
        assert_eq!(r.caps_checked, 1);
    }

    #[test]
    fn snapshot_escalation_rejected() {
        let mut t = table();
        let m = t.create(
            crate::types::ProcId(1).token(),
            ObjPayload::Memory(mem(Perms::READ, 0, 64)),
        );
        let root = t.create(
            crate::types::ProcId(1).token(),
            req(
                1,
                7,
                vec![Arg::Cap(CapArg {
                    cap: m,
                    // Snapshot claims RW; the live object only grants READ.
                    mem: Some(mem(Perms::RW, 0, 64)),
                })],
            ),
        );
        let e = verify_plan(&t, root).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::PrivilegeEscalation);
    }

    #[test]
    fn stale_epoch_rejected() {
        let mut t = table();
        let root = t.create(crate::types::ProcId(1).token(), req(1, 7, vec![]));
        let stale = CapRef {
            epoch: Epoch(root.epoch.0 + 1),
            ..root
        };
        let e = verify_plan(&t, stale).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::StaleEpoch);
    }

    #[test]
    fn copy_without_write_perm_rejected() {
        let sc = Syscall::MemoryCopy {
            src: Cid(0),
            dst: Cid(1),
        };
        let e = verify_syscall(&sc, |cid| {
            Some(if cid == Cid(0) {
                mem(Perms::RW, 0, 16)
            } else {
                mem(Perms::READ, 0, 16)
            })
        })
        .unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::MissingPerm(Perms::WRITE));
    }

    #[test]
    fn error_display_reads_like_a_span() {
        let e = VerifyError::new(
            VerifyErrorKind::RevokedCap,
            PlanPath(vec![
                PlanStep {
                    object: ObjectId(3),
                    arg: Some(2),
                },
                PlanStep {
                    object: ObjectId(9),
                    arg: None,
                },
            ]),
        );
        assert_eq!(
            e.to_string(),
            "plan rejected at obj#3 / arg[2] -> obj#9: revoked capability"
        );
    }
}
