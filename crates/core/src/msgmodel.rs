//! Analytic message-complexity model of §2.1.
//!
//! The paper derives: for an application using `N` services, the distributed
//! model cuts steady-state network messages from `2N` (star topology: one
//! round trip per service) to `N + 1` (chain/ring: one hop per service plus
//! the final response). When services themselves nest into a tree with `N`
//! total nodes and `L` leaves doing the work, the upper bound on the
//! reduction is `2·N / L`. The `fig2_message_complexity` bench checks the
//! *measured* FractOS pipeline against these formulas.

/// Steady-state network messages of the centralized (star) model with `n`
/// services: one request plus one response per service.
pub fn star_messages(n: u64) -> u64 {
    2 * n
}

/// Steady-state network messages of the fully distributed (chain) model
/// with `n` services: one hop into each service plus the final response.
pub fn chain_messages(n: u64) -> u64 {
    n + 1
}

/// Message-complexity reduction of the distributed model for a flat
/// application with `n` services.
pub fn flat_reduction(n: u64) -> f64 {
    star_messages(n) as f64 / chain_messages(n) as f64
}

/// Upper bound on the message-complexity reduction for a service *tree*
/// with `total` nodes and `leaves` leaf services (§2.1: "as high as
/// 2 · N / L").
pub fn tree_reduction_bound(total: u64, leaves: u64) -> f64 {
    assert!(leaves > 0 && leaves <= total, "invalid tree shape");
    2.0 * total as f64 / leaves as f64
}

/// Control messages of the paper's face-verification pipeline (§6.5):
/// centralized baseline uses eight (two for open, four for reading through
/// NFS + NVMe-oF, two for the GPU), FractOS uses five (two for open, one
/// chained call storage→GPU→frontend).
pub const FACEVERIF_BASELINE_CONTROL_MSGS: u64 = 8;

/// See [`FACEVERIF_BASELINE_CONTROL_MSGS`].
pub const FACEVERIF_FRACTOS_CONTROL_MSGS: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_model_matches_paper() {
        // "reduces the number of steady-state network messages by up to 2×
        // (from 2N to N+1)".
        assert_eq!(star_messages(3), 6);
        assert_eq!(chain_messages(3), 4);
        assert!((flat_reduction(3) - 1.5).abs() < 1e-12);
        // The bound approaches 2× as N grows.
        assert!(flat_reduction(100) > 1.9);
    }

    #[test]
    fn tree_bound_matches_paper() {
        // A two-level FS service: app → FS → SSD. N = 3 nodes, L = 1 leaf
        // doing the work: up to 6× fewer messages.
        assert!((tree_reduction_bound(3, 1) - 6.0).abs() < 1e-12);
        // Flat tree (all leaves): reduces to the 2× bound.
        assert!((tree_reduction_bound(4, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid tree shape")]
    fn tree_bound_rejects_zero_leaves() {
        tree_reduction_bound(3, 0);
    }

    #[test]
    fn faceverif_control_counts() {
        assert_eq!(FACEVERIF_BASELINE_CONTROL_MSGS, 8);
        assert_eq!(FACEVERIF_FRACTOS_CONTROL_MSGS, 5);
    }
}
