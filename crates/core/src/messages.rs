//! Actor-level message types of the FractOS protocol.
//!
//! Three channels exist (§3.1–§3.2): Process ↔ Controller request/response
//! queues, Controller ↔ Controller peer links, and harness-injected fault
//! events. All of them ride the simulated fabric; sizes for traffic
//! accounting come from the [`crate::wire`] codec.

use fractos_cap::ControllerAddr;
use fractos_sim::{Payload, TraceCtx};

use crate::types::{CapArg, FosError, IncomingRequest, MonitorCb, ProcId, Syscall, SyscallResult};
use crate::wire::Wire;

/// Messages delivered to a Process actor.
#[derive(Debug)]
pub enum ProcMsg {
    /// Kick-off event posted by the testbed; triggers `Service::on_start`.
    Start,
    /// A message from the Process's Controller.
    FromCtrl {
        /// Wire-level sequence number (per Controller → Process channel);
        /// the Process suppresses duplicates by it.
        seq: u64,
        /// Causal trace context stamped by the sender. An out-of-band
        /// header extension: excluded from `wire_size` accounting so
        /// traffic counters are identical whether or not spans are on.
        tctx: TraceCtx,
        /// The payload.
        msg: CtrlToProc,
    },
    /// A local timer armed via `Fos::sleep` fired.
    Timer {
        /// Token identifying the armed continuation.
        token: u64,
    },
    /// Self-scheduled retransmit of a syscall whose previous transmit was
    /// lost (only armed while a fault plan is active).
    Retransmit {
        /// Completion token of the pending syscall.
        token: u64,
        /// The operation to re-send.
        sc: Syscall,
        /// Original sequence number (unchanged across retransmits).
        seq: u64,
        /// Transmit attempt about to be made (1-based after the original).
        attempt: u32,
    },
    /// Last-resort request timeout: if the syscall is still pending when
    /// this fires, it resolves to `FosError::ControllerUnreachable`.
    SyscallTimeout {
        /// Completion token of the pending syscall.
        token: u64,
    },
    /// Harness-injected Process failure.
    Kill,
}

/// Controller → Process messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlToProc {
    /// Completion of an asynchronous syscall.
    Reply {
        /// Token the Process attached to the syscall.
        token: u64,
        /// The outcome.
        result: SyscallResult,
    },
    /// Delivery of an invoked Request (the `request_receive` path).
    Deliver(IncomingRequest),
    /// A monitor callback (§3.6).
    Monitor(MonitorCb),
}

impl CtrlToProc {
    /// Serialized size for traffic accounting.
    pub fn wire_size(&self) -> u64 {
        match self {
            CtrlToProc::Reply { result, .. } => 8 + result.wire_size(),
            CtrlToProc::Deliver(req) => req.wire_size(),
            CtrlToProc::Monitor(_) => 16,
        }
    }
}

/// Messages delivered to a Controller actor.
#[derive(Debug)]
pub enum CtrlMsg {
    /// A syscall posted by a managed Process.
    FromProc {
        /// The issuing Process.
        proc: ProcId,
        /// Completion token to echo in the reply.
        token: u64,
        /// The operation.
        sc: Syscall,
        /// Wire-level sequence number (per Process → Controller channel);
        /// the Controller suppresses duplicates by it so retransmitted
        /// syscalls stay idempotent.
        seq: u64,
        /// Causal trace context (out-of-band header extension; excluded
        /// from traffic accounting).
        tctx: TraceCtx,
    },
    /// A peer-Controller operation.
    FromPeer {
        /// The sending Controller.
        from: ControllerAddr,
        /// The operation.
        op: PeerOp,
        /// Wire-level sequence number (per directed peer channel).
        seq: u64,
        /// Causal trace context (out-of-band header extension; excluded
        /// from traffic accounting).
        tctx: TraceCtx,
    },
    /// Self-scheduled retransmit of a Controller → Process message whose
    /// previous transmit was lost (only armed while faults are active).
    RetransmitProc {
        /// The destination Process.
        proc: ProcId,
        /// The payload to re-send.
        msg: CtrlToProc,
        /// Original sequence number (unchanged across retransmits).
        seq: u64,
        /// Transmit attempt about to be made (1-based after the original).
        attempt: u32,
        /// Trace context of the original transmit, so the retry stays in
        /// the originating request's span tree.
        tctx: TraceCtx,
    },
    /// Self-scheduled retransmit of a peer operation whose previous
    /// transmit was lost (only armed while faults are active).
    RetransmitPeer {
        /// The destination Controller.
        to: ControllerAddr,
        /// The operation to re-send.
        op: PeerOp,
        /// Original sequence number (unchanged across retransmits).
        seq: u64,
        /// Transmit attempt about to be made (1-based after the original).
        attempt: u32,
        /// Trace context of the original transmit, so the retry stays in
        /// the originating request's span tree.
        tctx: TraceCtx,
    },
    /// Last-resort ack timeout for a pending peer operation: if the op is
    /// still pending when this fires it resolves to
    /// `FosError::ControllerUnreachable`.
    AckTimeout {
        /// The pending-operation token.
        token: u64,
    },
    /// The watchdog observed a previously-declared-dead Controller answer
    /// pings again (a healed partition, not a real crash); peers may lift
    /// their unreachability verdict.
    PeerRecovered {
        /// The recovered Controller.
        peer: ControllerAddr,
    },
    /// The request/response channel to a managed Process was severed
    /// (Process failure detection, §3.6).
    ProcChannelSevered {
        /// The failed Process.
        proc: ProcId,
    },
    /// The watchdog reports a peer Controller (or its node) failed.
    PeerFailed {
        /// The failed Controller.
        peer: ControllerAddr,
    },
    /// Harness-injected Controller failure.
    Kill,
    /// Harness-injected Controller reboot (epoch advances; all prior
    /// capabilities become stale).
    Reboot,
    /// Liveness probe from the watchdog service (§3.6).
    Ping {
        /// The watchdog actor to answer.
        watchdog: fractos_sim::ActorId,
        /// Where the watchdog sits on the fabric.
        watchdog_ep: fractos_net::Endpoint,
        /// Sequence number to echo.
        seq: u64,
    },
}

/// Kinds of monitors (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// `monitor_delegate`.
    Delegate,
    /// `monitor_receive`.
    Receive,
}

/// Derivation operations executed at an object's owner Controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeriveOp {
    /// `memory_diminish`.
    Diminish {
        /// Offset of the new view within the source view.
        offset: u64,
        /// Length of the new view.
        size: u64,
        /// Permissions to drop.
        drop_perms: fractos_cap::Perms,
    },
    /// Request refinement: append arguments to a derived Request.
    Refine {
        /// Immediate arguments to append.
        imms: Vec<Payload>,
        /// Already-delegation-resolved capability arguments to append.
        caps: Vec<CapArg>,
    },
    /// `cap_create_revtree`.
    Revtree,
}

/// Controller ↔ Controller operations.
///
/// Every variant that expects an answer carries `(reply_to, token)`; the
/// answer comes back as the corresponding `*Ack` with the same token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerOp {
    /// Forward `request_invoke` to the Request's owner (= provider's
    /// Controller).
    Invoke {
        /// The Request capability being invoked.
        req: fractos_cap::CapRef,
        /// Who to ack.
        reply_to: ControllerAddr,
        /// Ack token.
        token: u64,
    },
    /// Ack of [`PeerOp::Invoke`].
    InvokeAck {
        /// Echoed token.
        token: u64,
        /// Validation outcome.
        result: Result<(), FosError>,
    },
    /// Execute a derivation at the object's owner.
    Derive {
        /// The source object.
        obj: fractos_cap::CapRef,
        /// The derivation.
        op: DeriveOp,
        /// The Process registering the derived object (for failure
        /// cleanup).
        creator: ProcId,
        /// Who to ack.
        reply_to: ControllerAddr,
        /// Ack token.
        token: u64,
    },
    /// Ack of [`PeerOp::Derive`] with the new capability (and memory
    /// snapshot when applicable).
    DeriveAck {
        /// Echoed token.
        token: u64,
        /// The derived capability.
        result: Result<CapArg, FosError>,
    },
    /// Register a delegation of `obj` to Process `to` at the owner
    /// (mints a separately revocable child when a `monitor_delegate` is
    /// armed, §3.6).
    Delegate {
        /// The delegated object.
        obj: fractos_cap::CapRef,
        /// The delegatee Process.
        to: ProcId,
        /// Who to ack.
        reply_to: ControllerAddr,
        /// Ack token.
        token: u64,
    },
    /// Ack of [`PeerOp::Delegate`].
    DelegateAck {
        /// Echoed token.
        token: u64,
        /// The capability the delegatee should hold.
        result: Result<CapArg, FosError>,
    },
    /// Revoke an object at its owner.
    Revoke {
        /// The object to revoke.
        obj: fractos_cap::CapRef,
        /// Who to ack.
        reply_to: ControllerAddr,
        /// Ack token.
        token: u64,
    },
    /// Ack of [`PeerOp::Revoke`].
    RevokeAck {
        /// Echoed token.
        token: u64,
        /// Number of revocation-tree nodes invalidated.
        result: Result<u64, FosError>,
    },
    /// Arm a monitor at the object's owner.
    Monitor {
        /// The monitored object.
        obj: fractos_cap::CapRef,
        /// Which monitor.
        kind: MonitorKind,
        /// The watching Process.
        watcher: ProcId,
        /// Echoed in the callback.
        callback_id: u64,
        /// Who to ack.
        reply_to: ControllerAddr,
        /// Ack token.
        token: u64,
    },
    /// Ack of [`PeerOp::Monitor`].
    MonitorAck {
        /// Echoed token.
        token: u64,
        /// Outcome.
        result: Result<(), FosError>,
    },
    /// Route a monitor callback to the Controller managing `proc`.
    MonitorEvent {
        /// The watching Process.
        proc: ProcId,
        /// The callback.
        cb: MonitorCb,
    },
    /// Out-of-critical-path cleanup broadcast (§3.5): peers drop dangling
    /// capabilities referencing these revoked objects.
    Cleanup {
        /// Revoked objects.
        objs: Vec<fractos_cap::CapRef>,
    },
    /// Failure translation (§3.6): the named Process failed; revoke
    /// everything it registered or was delegated with monitoring.
    FailProcess {
        /// The failed Process.
        proc: ProcId,
    },
    /// Bootstrap registry: publish a capability.
    KvPut {
        /// Key.
        key: String,
        /// Published capability (with memory snapshot if applicable).
        cap: CapArg,
        /// Who to ack.
        reply_to: ControllerAddr,
        /// Ack token.
        token: u64,
    },
    /// Ack of [`PeerOp::KvPut`].
    KvPutAck {
        /// Echoed token.
        token: u64,
        /// Outcome.
        result: Result<(), FosError>,
    },
    /// Bootstrap registry: look up a capability for Process `to`.
    KvGet {
        /// Key.
        key: String,
        /// The Process that will receive the capability.
        to: ProcId,
        /// Who to ack.
        reply_to: ControllerAddr,
        /// Ack token.
        token: u64,
    },
    /// Ack of [`PeerOp::KvGet`].
    KvGetAck {
        /// Echoed token.
        token: u64,
        /// The capability to install, if found.
        result: Result<CapArg, FosError>,
    },
}

impl PeerOp {
    /// Serialized size (the real wire encoding; see `crate::wire_peer`).
    pub fn wire_size(&self) -> u64 {
        crate::wire::Wire::wire_size(self)
    }

    /// The pending-operation token a request-type op expects an ack for
    /// (`None` for acks and one-way ops). Senders arm last-resort ack
    /// timeouts by it while a fault plan is active.
    pub fn ack_token(&self) -> Option<u64> {
        match self {
            PeerOp::Invoke { token, .. }
            | PeerOp::Derive { token, .. }
            | PeerOp::Delegate { token, .. }
            | PeerOp::Revoke { token, .. }
            | PeerOp::Monitor { token, .. }
            | PeerOp::KvPut { token, .. }
            | PeerOp::KvGet { token, .. } => Some(*token),
            PeerOp::InvokeAck { .. }
            | PeerOp::DeriveAck { .. }
            | PeerOp::DelegateAck { .. }
            | PeerOp::RevokeAck { .. }
            | PeerOp::MonitorAck { .. }
            | PeerOp::KvPutAck { .. }
            | PeerOp::KvGetAck { .. }
            | PeerOp::MonitorEvent { .. }
            | PeerOp::Cleanup { .. }
            | PeerOp::FailProcess { .. } => None,
        }
    }

    /// Number of capabilities this message carries (for Fig 7 serialization
    /// cost accounting).
    pub fn cap_count(&self) -> u64 {
        match self {
            PeerOp::Derive {
                op: DeriveOp::Refine { caps, .. },
                ..
            } => caps.len() as u64,
            PeerOp::Delegate { .. }
            | PeerOp::DelegateAck { result: Ok(_), .. }
            | PeerOp::DeriveAck { result: Ok(_), .. }
            | PeerOp::KvGetAck { result: Ok(_), .. }
            | PeerOp::KvPut { .. } => 1,
            _ => 0,
        }
    }
}

/// Size of a Process→Controller syscall message for traffic accounting.
pub fn syscall_msg_size(sc: &Syscall) -> u64 {
    8 /* token */ + 4 /* proc */ + sc.wire_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_cap::{CapRef, Cid, ControllerAddr, Epoch, ObjectId};

    fn cref() -> CapRef {
        CapRef {
            ctrl: ControllerAddr(1),
            epoch: Epoch(0),
            object: ObjectId(2),
        }
    }

    #[test]
    fn sizes_are_positive_and_scale() {
        let small = PeerOp::Invoke {
            req: cref(),
            reply_to: ControllerAddr(0),
            token: 1,
        };
        assert!(small.wire_size() > 0);

        let big = PeerOp::Derive {
            obj: cref(),
            op: DeriveOp::Refine {
                imms: vec![vec![0; 1000].into()],
                caps: vec![],
            },
            creator: ProcId(0),
            reply_to: ControllerAddr(0),
            token: 2,
        };
        assert!(big.wire_size() > 1000);
    }

    #[test]
    fn cap_counts() {
        let op = PeerOp::Delegate {
            obj: cref(),
            to: ProcId(1),
            reply_to: ControllerAddr(0),
            token: 0,
        };
        assert_eq!(op.cap_count(), 1);
        let op = PeerOp::Derive {
            obj: cref(),
            op: DeriveOp::Refine {
                imms: vec![],
                caps: vec![
                    CapArg {
                        cap: cref(),
                        mem: None,
                    },
                    CapArg {
                        cap: cref(),
                        mem: None,
                    },
                ],
            },
            creator: ProcId(0),
            reply_to: ControllerAddr(0),
            token: 0,
        };
        assert_eq!(op.cap_count(), 2);
    }

    #[test]
    fn syscall_size_includes_payload() {
        let null = syscall_msg_size(&Syscall::Null);
        let imm = syscall_msg_size(&Syscall::RequestCreate {
            base: None,
            tag: 0,
            imms: vec![vec![0; 4096].into()],
            caps: vec![Cid(0)],
        });
        assert!(imm > null + 4096);
    }

    #[test]
    fn ctrl_to_proc_sizes() {
        let r = CtrlToProc::Reply {
            token: 1,
            result: SyscallResult::Ok,
        };
        assert!(r.wire_size() >= 9);
        let d = CtrlToProc::Deliver(IncomingRequest {
            tag: 0,
            imms: vec![vec![0; 100].into()],
            caps: vec![],
        });
        assert!(d.wire_size() > 100);
    }
}
