//! Property tests for the robustness layer: under *any* finite-drop fault
//! plan, every Request the workload issues must resolve — either complete
//! or fail with a typed error — and the system must drain clean.
//!
//! "Finite-drop" means the plan cannot censor the fabric forever: drop
//! probabilities stay at or below 0.5 (so a 5-attempt retry budget gets a
//! message through with probability ≥ 1 − 0.5⁵, and an unlucky message
//! fails *typed*, not silently), and every partition carries a heal time.
//! The invariants checked after the run drains:
//!
//! - every continuation ran (`issued == resolved`; no lost callbacks),
//! - no Process holds pending or backlogged syscalls,
//! - no Controller holds pending peer ops or armed retransmit timers,
//! - the client's capability space holds exactly one entry per
//!   *successful* capability-minting call — failed ops leak nothing.

use proptest::prelude::*;

use fractos_cap::Cid;
use fractos_core::prelude::*;
use fractos_net::{FaultPlan, NodeId};
use fractos_sim::SimTime;

const TAG: u64 = 0x6100;

fn us(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000)
}

/// One generated fault plan, kept as plain data so failing cases print.
#[derive(Debug, Clone)]
struct PlanSpec {
    /// Directed lossy links: (src, dst, drop probability ≤ 0.5).
    drops: Vec<(u32, u32, f64)>,
    /// Guaranteed single drops: (src, dst, at µs).
    one_shots: Vec<(u32, u32, u64)>,
    /// Transient slowdowns: (src, dst, from µs, duration µs, factor).
    degradations: Vec<(u32, u32, u64, u64, f64)>,
    /// Healing partitions: (a, b, from µs, duration µs). Never permanent.
    partitions: Vec<(u32, u32, u64, u64)>,
    seed: u64,
}

impl PlanSpec {
    fn build(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for &(src, dst, p) in &self.drops {
            plan = plan.drop_prob(NodeId(src), NodeId(dst), p);
        }
        for &(src, dst, at) in &self.one_shots {
            plan = plan.one_shot(NodeId(src), NodeId(dst), us(at));
        }
        for &(src, dst, from, dur, factor) in &self.degradations {
            plan = plan.degrade(NodeId(src), NodeId(dst), us(from), us(from + dur), factor);
        }
        for &(a, b, from, dur) in &self.partitions {
            plan = plan.partition(NodeId(a), NodeId(b), us(from), Some(us(from + dur)));
        }
        plan
    }
}

fn arb_plan() -> impl Strategy<Value = PlanSpec> {
    let node = 0u32..3;
    let drops = prop::collection::vec((node.clone(), 0u32..3, 0.0f64..0.5), 0..4);
    let one_shots = prop::collection::vec((node.clone(), 0u32..3, 0u64..200), 0..3);
    let degradations = prop::collection::vec(
        (node.clone(), 0u32..3, 0u64..100, 10u64..500, 1.0f64..8.0),
        0..3,
    );
    let partitions = prop::collection::vec((node, 0u32..3, 0u64..150, 50u64..1_000), 0..2);
    (drops, one_shots, degradations, partitions, any::<u64>()).prop_map(
        |(drops, one_shots, degradations, partitions, seed)| PlanSpec {
            drops,
            one_shots,
            degradations,
            partitions: partitions
                .into_iter()
                .filter(|&(a, b, _, _)| a != b)
                .collect(),
            seed,
        },
    )
}

/// Provider: publishes one Request endpoint under "svc". Its bootstrap
/// syscalls run before the plan is armed, so the endpoint always exists.
struct Provider;

impl Service for Provider {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.request_create_new(TAG, vec![], vec![], |_s, res, fos| {
            fos.kv_put("svc", res.cid(), |_, _, _| {});
        });
    }
    fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
}

/// Client: resolves "svc", then runs `n` derive→invoke chains across the
/// faulty fabric, counting every issued call and every resolution.
struct Client {
    n: u64,
    pub issued: u64,
    pub resolved: u64,
    /// Capability-minting calls that succeeded (kv_get + derives): the
    /// client's capability space must hold exactly this many entries.
    pub caps_minted: u64,
    pub typed_failures: u64,
}

impl Client {
    fn new(n: u64) -> Self {
        Client {
            n,
            issued: 0,
            resolved: 0,
            caps_minted: 0,
            typed_failures: 0,
        }
    }

    fn settle(&mut self, res: &SyscallResult) -> Option<Cid> {
        self.resolved += 1;
        match res {
            SyscallResult::NewCid(cid) => {
                self.caps_minted += 1;
                Some(*cid)
            }
            SyscallResult::Err(_) => {
                self.typed_failures += 1;
                None
            }
            _ => None,
        }
    }
}

impl Service for Client {
    fn on_start(&mut self, fos: &Fos<Self>) {
        self.issued += 1;
        fos.kv_get("svc", |s: &mut Self, res, fos| {
            let Some(base) = s.settle(&res) else { return };
            for i in 0..s.n {
                s.issued += 1;
                fos.request_derive(
                    base,
                    vec![vec![i as u8].into()],
                    vec![],
                    |s: &mut Self, res, fos| {
                        let Some(derived) = s.settle(&res) else {
                            return;
                        };
                        s.issued += 1;
                        fos.request_invoke(derived, |s: &mut Self, res, _| {
                            s.resolved += 1;
                            if matches!(res, SyscallResult::Err(_)) {
                                s.typed_failures += 1;
                            }
                        });
                    },
                );
            }
        });
    }
    fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness and leak-freedom under arbitrary recoverable chaos.
    #[test]
    fn requests_always_resolve_under_finite_drop_plans(spec in arb_plan()) {
        let mut tb = Testbed::paper(spec.seed);
        let ctrls = tb.controllers_per_node(false);
        let provider = tb.add_process("provider", cpu(0), ctrls[0], Provider);
        tb.start_process(provider);
        tb.run();

        // Arm the plan only for the client's workload: the property is
        // about request handling, not bootstrap.
        tb.install_fault_plan(spec.build(), spec.seed);
        let client = tb.add_process("client", cpu(2), ctrls[2], Client::new(6));
        tb.start_process(client);
        tb.run();

        // Every issued call resolved: completed or failed typed, but the
        // continuation always ran.
        let (issued, resolved, minted) = tb.with_service::<Client, _>(client, |c| {
            (c.issued, c.resolved, c.caps_minted)
        });
        prop_assert!(issued > 0, "workload issued nothing");
        prop_assert_eq!(resolved, issued, "lost continuations under {:?}", spec.clone());

        // Nothing in flight anywhere once the queue drained.
        for &(proc, svc) in &[(provider, false), (client, true)] {
            let actor = tb.proc_actor(proc);
            let (pending, backlog) = if svc {
                tb.sim.with_actor::<ProcessActor<Client>, _>(actor, |p| {
                    (p.pending_syscalls(), p.backlogged())
                })
            } else {
                tb.sim.with_actor::<ProcessActor<Provider>, _>(actor, |p| {
                    (p.pending_syscalls(), p.backlogged())
                })
            };
            prop_assert_eq!(pending, 0, "pending syscalls under {:?}", spec.clone());
            prop_assert_eq!(backlog, 0, "backlogged syscalls under {:?}", spec.clone());
        }
        for &ctrl in &ctrls {
            let ops = tb.with_controller(ctrl, |c| c.pending_ops());
            prop_assert_eq!(ops, 0, "pending peer ops at {:?} under {:?}", ctrl, spec.clone());
        }

        // No leaked capability-table entries: the client's space holds
        // exactly one capability per successful minting call.
        let caps = tb.with_controller(ctrls[2], |c| c.capspace_len(client)) as u64;
        prop_assert_eq!(caps, minted, "capability leak under {:?}", spec.clone());
    }

    /// The exact same `(seed, plan)` drains to the exact same end state —
    /// the chaos layer never adds nondeterminism of its own.
    #[test]
    fn faulty_runs_replay_bit_identically(spec in arb_plan()) {
        let run = || {
            let mut tb = Testbed::paper(spec.seed);
            let ctrls = tb.controllers_per_node(false);
            let provider = tb.add_process("provider", cpu(0), ctrls[0], Provider);
            tb.start_process(provider);
            tb.run();
            tb.install_fault_plan(spec.build(), spec.seed);
            let client = tb.add_process("client", cpu(2), ctrls[2], Client::new(4));
            tb.start_process(client);
            tb.run();
            let counts = tb.with_service::<Client, _>(client, |c| {
                (c.issued, c.resolved, c.caps_minted, c.typed_failures)
            });
            let faults: Vec<_> = tb
                .traffic()
                .fault_links()
                .map(|(k, v)| (*k, *v))
                .collect();
            (tb.now(), counts, faults)
        };
        prop_assert_eq!(run(), run(), "replay diverged for {:?}", spec.clone());
    }
}
