//! End-to-end tests of the FractOS OS layer on a simulated cluster.
//!
//! These exercise the full message protocol: bootstrap via the KV registry,
//! Request creation/refinement/invocation across Controllers, real-byte
//! memory copies, revocation and its immediacy, monitors, and failure
//! translation.

use fractos_cap::{CapError, Cid, Perms};
use fractos_core::prelude::*;
use fractos_core::testbed::CtrlPlacement;
use fractos_core::{PlanPath, VerifyError, VerifyErrorKind};

/// A service that publishes one Request endpoint and records deliveries.
struct Recorder {
    tag: u64,
    key: &'static str,
    received: Vec<IncomingRequest>,
    monitor_cbs: Vec<MonitorCb>,
}

impl Recorder {
    fn new(tag: u64, key: &'static str) -> Self {
        Recorder {
            tag,
            key,
            received: Vec::new(),
            monitor_cbs: Vec::new(),
        }
    }
}

impl Service for Recorder {
    fn on_start(&mut self, fos: &Fos<Self>) {
        let key = self.key;
        fos.request_create_new(self.tag, vec![], vec![], move |_s, res, fos| {
            fos.kv_put(key, res.cid(), |_, res, _| assert!(res.is_ok()));
        });
    }
    fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
        self.received.push(req);
    }
    fn on_monitor(&mut self, cb: MonitorCb, _fos: &Fos<Self>) {
        self.monitor_cbs.push(cb);
    }
}

/// A scriptable client: runs a closure at start.
struct Script {
    results: Vec<SyscallResult>,
    cids: Vec<Cid>,
    #[allow(clippy::type_complexity)]
    script: Option<Box<dyn FnOnce(&mut Script, &Fos<Script>) + Send>>,
}

impl Script {
    fn new(f: impl FnOnce(&mut Script, &Fos<Script>) + Send + 'static) -> Self {
        Script {
            results: Vec::new(),
            cids: Vec::new(),
            script: Some(Box::new(f)),
        }
    }
}

impl Service for Script {
    fn on_start(&mut self, fos: &Fos<Self>) {
        if let Some(f) = self.script.take() {
            f(self, fos);
        }
    }
    fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
}

fn two_ctrl_testbed() -> (Testbed, Vec<fractos_cap::ControllerAddr>) {
    let mut tb = Testbed::paper(7);
    let ctrls = tb.controllers_per_node(false);
    (tb, ctrls)
}

#[test]
fn cross_node_invoke_delivers_imms_and_caps() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(9, "svc"));
    let cli = tb.add_process(
        "cli",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.memory_create_new(64, Perms::RW, |_s, _addr, mem, fos| {
                let mem = mem.unwrap();
                fos.kv_get("svc", move |_s, res, fos| {
                    let base = res.cid();
                    // Refine with an immediate and the memory capability.
                    fos.request_derive(
                        base,
                        vec![b"hello".to_vec().into()],
                        vec![mem],
                        |s: &mut Script, res, fos| {
                            let derived = res.cid();
                            s.cids.push(derived);
                            fos.request_invoke(derived, |s: &mut Script, res, _| {
                                s.results.push(res);
                            });
                        },
                    );
                });
            });
        }),
    );
    tb.start_process(svc);
    tb.run();
    tb.start_process(cli);
    tb.run();

    tb.with_service::<Script, _>(cli, |s| {
        assert_eq!(s.results, vec![SyscallResult::Ok]);
    });
    tb.with_service::<Recorder, _>(svc, |r| {
        assert_eq!(r.received.len(), 1);
        let req = &r.received[0];
        assert_eq!(req.tag, 9);
        assert_eq!(req.imms, vec![b"hello".to_vec()]);
        assert_eq!(req.caps.len(), 1);
    });
}

#[test]
fn memory_copy_moves_real_bytes_across_nodes() {
    let (mut tb, ctrls) = two_ctrl_testbed();

    // Destination process on node 0 registers a buffer and publishes it.
    let dst = tb.add_process(
        "dst",
        cpu(0),
        ctrls[0],
        Script::new(|_, fos| {
            fos.memory_create_new(32, Perms::RW, |s: &mut Script, addr, cid, fos| {
                let cid = cid.unwrap();
                s.cids.push(cid);
                // Remember the address via results hack: store in cids only.
                let _ = addr;
                fos.kv_put("dst.buf", cid, |_, res, _| assert!(res.is_ok()));
            });
        }),
    );
    tb.start_process(dst);
    tb.run();
    // Find the dst buffer address for later verification.
    let dst_addr = {
        let mem = tb.mem.borrow();
        // First allocation of this process starts at 0x1000.
        let _ = &mem;
        0x1000u64
    };

    // Source process on node 1 writes a pattern and copies it over.
    let src = tb.add_process(
        "src",
        cpu(1),
        ctrls[1],
        Script::new(move |_, fos| {
            fos.memory_create_new(32, Perms::RW, move |_s, addr, cid, fos| {
                let src_cid = cid.unwrap();
                fos.mem_write(addr, 0, &[0xAB; 32]).unwrap();
                fos.kv_get("dst.buf", move |_s, res, fos| {
                    let dst_cid = res.cid();
                    fos.memory_copy(src_cid, dst_cid, |s: &mut Script, res, _| {
                        s.results.push(res);
                    });
                });
            });
        }),
    );
    tb.start_process(src);
    tb.run();

    tb.with_service::<Script, _>(src, |s| {
        assert_eq!(s.results, vec![SyscallResult::Ok]);
    });
    // The destination process's memory now holds the pattern.
    let bytes = tb.mem.borrow().read(dst, dst_addr, 0, 32).unwrap();
    assert_eq!(bytes, vec![0xAB; 32]);
}

#[test]
fn diminish_narrows_extent_and_permissions() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrls[0],
        Script::new(|_, fos| {
            fos.memory_create_new(64, Perms::RW, |_s, _addr, cid, fos| {
                let cid = cid.unwrap();
                fos.call(
                    Syscall::MemoryDiminish {
                        cid,
                        offset: 16,
                        size: 16,
                        drop_perms: Perms::WRITE,
                    },
                    |s: &mut Script, res, fos| {
                        let view = res.cid();
                        s.cids.push(view);
                        // Writing through the read-only view must fail: we
                        // test via memory_copy into it.
                        fos.memory_create_new(16, Perms::RW, move |_s, addr, c2, fos| {
                            let c2 = c2.unwrap();
                            fos.mem_write(addr, 0, &[1; 16]).unwrap();
                            fos.memory_copy(c2, view, |s: &mut Script, res, _| {
                                s.results.push(res);
                            });
                        });
                    },
                );
            });
        }),
    );
    tb.start_process(p);
    tb.run();
    tb.with_service::<Script, _>(p, |s| {
        // The copy is now rejected by the static pre-dispatch verifier
        // (missing WRITE on the destination snapshot) before any byte moves.
        assert_eq!(
            s.results,
            vec![SyscallResult::Err(FosError::Verify(VerifyError {
                kind: VerifyErrorKind::MissingPerm(Perms::WRITE),
                path: PlanPath::default(),
            }))],
            "copy into a read-only view must be rejected"
        );
    });
}

#[test]
fn revocation_is_immediate_for_data_plane() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    // Owner publishes a buffer; client gets it, owner revokes, client copy
    // must fail.
    let owner = tb.add_process(
        "owner",
        cpu(0),
        ctrls[0],
        Script::new(|_, fos| {
            fos.memory_create_new(16, Perms::RW, |s: &mut Script, _addr, cid, fos| {
                let cid = cid.unwrap();
                s.cids.push(cid);
                fos.kv_put("buf", cid, |_, _, _| {});
            });
        }),
    );
    tb.start_process(owner);
    tb.run();

    let client = tb.add_process(
        "client",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            // Pre-create the destination buffer so capability indices stay
            // stable across the later cleanup broadcast.
            fos.memory_create_new(16, Perms::RW, |s: &mut Script, _a, c, fos| {
                s.cids.push(c.unwrap());
                fos.kv_get("buf", |s: &mut Script, res, _| {
                    s.cids.push(res.cid());
                });
            });
        }),
    );
    tb.start_process(client);
    tb.run();

    // Owner revokes its capability (the root object).
    let owner_cid = tb.with_service::<Script, _>(owner, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(owner);
    fos.call(Syscall::CapRevoke { cid: owner_cid }, |s, res, _| {
        s.results.push(res)
    });
    tb.poke(owner);
    // Run just past the revocation but *before* the 100 µs cleanup
    // broadcast lands at the peer: revocation must already be effective.
    let deadline = tb.now() + fractos_sim::SimDuration::from_micros(20);
    tb.run_until(deadline);
    tb.with_service::<Script, _>(owner, |s| {
        assert!(matches!(s.results[0], SyscallResult::Value(_)));
    });

    // Client still holds its (now dangling) capability and tries to copy
    // out of the revoked buffer: the window check at the owner rejects it.
    let (dst_cid, src_cid) = tb.with_service::<Script, _>(client, |s| (s.cids[0], s.cids[1]));
    let fos = tb.fos_of::<Script>(client);
    fos.memory_copy(src_cid, dst_cid, |s: &mut Script, res, _| {
        s.results.push(res);
    });
    tb.poke(client);
    tb.run();
    tb.with_service::<Script, _>(client, |s| {
        assert_eq!(
            s.results[0],
            SyscallResult::Err(FosError::WindowInvalid),
            "copy through revoked capability must fail immediately"
        );
    });

    // After the cleanup broadcast, the dangling capability is gone from the
    // client's space entirely.
    let fos = tb.fos_of::<Script>(client);
    fos.memory_copy(src_cid, dst_cid, |s: &mut Script, res, _| {
        s.results.push(res);
    });
    tb.poke(client);
    tb.run();
    tb.with_service::<Script, _>(client, |s| {
        assert!(
            matches!(s.results[1], SyscallResult::Err(FosError::Cap(_))),
            "after cleanup the cid is dangling, got {:?}",
            s.results[1]
        );
    });
}

#[test]
fn revtree_node_revocation_spares_the_parent() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrls[0],
        Script::new(|_, fos| {
            fos.memory_create_new(16, Perms::RW, |_s, _a, cid, fos| {
                let root = cid.unwrap();
                fos.call(
                    Syscall::CapCreateRevtree { cid: root },
                    move |s: &mut Script, res, fos| {
                        let node = res.cid();
                        s.cids.push(root);
                        s.cids.push(node);
                        fos.call(
                            Syscall::CapRevoke { cid: node },
                            |s: &mut Script, res, _| {
                                s.results.push(res);
                            },
                        );
                    },
                );
            });
        }),
    );
    tb.start_process(p);
    tb.run();

    // Parent window still valid: a self-copy through the root succeeds.
    let root = tb.with_service::<Script, _>(p, |s| {
        assert!(matches!(s.results[0], SyscallResult::Value(1)));
        s.cids[0]
    });
    let fos = tb.fos_of::<Script>(p);
    fos.memory_create_new(16, Perms::RW, move |_s, _a, c, fos| {
        let c = c.unwrap();
        fos.memory_copy(root, c, |s: &mut Script, res, _| s.results.push(res));
    });
    tb.poke(p);
    tb.run();
    tb.with_service::<Script, _>(p, |s| {
        assert_eq!(s.results[1], SyscallResult::Ok);
    });
}

#[test]
fn monitor_delegate_fires_when_clients_revoke() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    // Service creates a request, arms monitor_delegate, publishes it.
    let svc = tb.add_process(
        "svc",
        cpu(0),
        ctrls[0],
        Script::new(|_, fos| {
            fos.request_create_new(1, vec![], vec![], |_s, res, fos| {
                let cid = res.cid();
                fos.call(
                    Syscall::MonitorDelegate {
                        cid,
                        callback_id: 42,
                    },
                    move |_s, res, fos| {
                        assert!(res.is_ok());
                        fos.kv_put("svc.req", cid, |_, _, _| {});
                    },
                );
            });
        }),
    );
    tb.start_process(svc);
    tb.run();

    // Client obtains the request (delegation mints a monitored child).
    let cli = tb.add_process(
        "cli",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |s: &mut Script, res, _| {
                s.cids.push(res.cid());
            });
        }),
    );
    tb.start_process(cli);
    tb.run();

    // Client revokes its own (child) capability → service gets the callback.
    let ccid = tb.with_service::<Script, _>(cli, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(cli);
    fos.call(Syscall::CapRevoke { cid: ccid }, |_, _, _| {});
    tb.poke(cli);
    tb.run();

    // The Script service records monitors? Script has no on_monitor — use a
    // fresh check: monitor events land in on_monitor of Script's default
    // impl (ignored). Instead check from the service side via a Recorder.
    // This test asserts the protocol ran without errors; the Recorder-based
    // variant below checks delivery.
}

#[test]
fn monitor_delegate_callback_is_delivered() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(1, "svc.req"));
    tb.start_process(svc);
    tb.run();

    // Arm the monitor on the service's published request.
    let fos = tb.fos_of::<Recorder>(svc);
    fos.call(
        Syscall::KvGet {
            key: "svc.req".into(),
        },
        |_s, res, fos| {
            // The service re-fetches its own cap; arm monitoring on the
            // original cid 0 instead (first created capability).
            let _ = res;
            fos.call(
                Syscall::MonitorDelegate {
                    cid: Cid(0),
                    callback_id: 7,
                },
                |_, res, _| assert!(res.is_ok()),
            );
        },
    );
    tb.poke(svc);
    tb.run();

    let cli = tb.add_process(
        "cli",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |s: &mut Script, res, _| {
                s.cids.push(res.cid());
            });
        }),
    );
    tb.start_process(cli);
    tb.run();

    let ccid = tb.with_service::<Script, _>(cli, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(cli);
    fos.call(Syscall::CapRevoke { cid: ccid }, |_, _, _| {});
    tb.poke(cli);
    tb.run();

    tb.with_service::<Recorder, _>(svc, |r| {
        assert_eq!(
            r.monitor_cbs,
            vec![MonitorCb::DelegateDrained { callback_id: 7 }]
        );
    });
}

#[test]
fn process_failure_translates_into_monitor_receive() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    // Provider publishes a request.
    let provider = tb.add_process("prov", cpu(0), ctrls[0], Recorder::new(1, "prov.req"));
    tb.start_process(provider);
    tb.run();

    // Watcher obtains it and arms monitor_receive: it wants to know when
    // the provider dies (failure → revocation → callback, §3.6).
    let watcher = tb.add_process("watch", cpu(1), ctrls[1], Recorder::new(2, "watch.req"));
    tb.start_process(watcher);
    tb.run();
    let fos = tb.fos_of::<Recorder>(watcher);
    fos.kv_get("prov.req", |_s, res, fos| {
        let cid = res.cid();
        fos.call(
            Syscall::MonitorReceive {
                cid,
                callback_id: 99,
            },
            |_, res, _| assert!(res.is_ok()),
        );
    });
    tb.poke(watcher);
    tb.run();

    // Kill the provider.
    tb.kill_process(provider);
    tb.run();

    tb.with_service::<Recorder, _>(watcher, |r| {
        assert_eq!(r.monitor_cbs, vec![MonitorCb::Receive { callback_id: 99 }]);
    });
}

#[test]
fn invoking_a_dead_process_request_fails() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(1, "svc.req"));
    tb.start_process(svc);
    tb.run();

    let cli = tb.add_process(
        "cli",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |s: &mut Script, res, _| s.cids.push(res.cid()));
        }),
    );
    tb.start_process(cli);
    tb.run();

    tb.kill_process(svc);
    tb.run();

    let cid = tb.with_service::<Script, _>(cli, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(cli);
    fos.request_invoke(cid, |s, res, _| s.results.push(res));
    tb.poke(cli);
    tb.run();
    tb.with_service::<Script, _>(cli, |s| {
        assert!(
            matches!(
                s.results[0],
                SyscallResult::Err(FosError::ProcessFailed) | SyscallResult::Err(FosError::Cap(_))
            ),
            "got {:?}",
            s.results[0]
        );
    });
}

#[test]
fn controller_reboot_stales_old_capabilities() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(1, "svc.req"));
    tb.start_process(svc);
    tb.run();

    let cli = tb.add_process(
        "cli",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |s: &mut Script, res, _| s.cids.push(res.cid()));
        }),
    );
    tb.start_process(cli);
    tb.run();

    // Reboot the service's controller: epoch bumps, objects vanish.
    tb.reboot_controller(ctrls[0]);
    tb.run();

    let cid = tb.with_service::<Script, _>(cli, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(cli);
    fos.request_invoke(cid, |s, res, _| s.results.push(res));
    tb.poke(cli);
    tb.run();
    tb.with_service::<Script, _>(cli, |s| {
        assert_eq!(
            s.results[0],
            SyscallResult::Err(FosError::Cap(CapError::StaleEpoch(fractos_cap::ObjectId(
                0
            )))),
            "stale-epoch detection must reject pre-reboot capabilities"
        );
    });
}

#[test]
fn controller_failure_fails_pending_ops_at_peers() {
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(1, "svc.req"));
    tb.start_process(svc);
    tb.run();

    let cli = tb.add_process(
        "cli",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |s: &mut Script, res, _| s.cids.push(res.cid()));
        }),
    );
    tb.start_process(cli);
    tb.run();

    // Kill controller 0 (which owns the request & hosts the registry), then
    // try to invoke: the client's controller must fail the op once the
    // watchdog tells it the peer is gone.
    tb.kill_controller(ctrls[0]);
    tb.run();

    let cid = tb.with_service::<Script, _>(cli, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(cli);
    fos.request_invoke(cid, |s, res, _| s.results.push(res));
    tb.poke(cli);
    tb.run();
    tb.with_service::<Script, _>(cli, |s| {
        assert!(
            matches!(
                s.results.first(),
                Some(SyscallResult::Err(FosError::ControllerUnreachable))
                    | Some(SyscallResult::Err(FosError::ProcessFailed))
                    | Some(SyscallResult::Err(FosError::Cap(_)))
            ),
            "got {:?}",
            s.results
        );
    });
}

#[test]
fn null_syscall_latency_matches_table3() {
    // Controller on the same CPU: 3.00 µs (Table 3).
    let mut tb = Testbed::paper(3);
    let ctrl = tb.add_controller(CtrlPlacement::HostCpu(NodeId(0)));
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrl,
        Script::new(|_, fos| {
            fos.call(Syscall::Null, |s: &mut Script, res, _| s.results.push(res));
        }),
    );
    tb.start_process(p);
    let t0 = tb.now();
    tb.run();
    let us = tb.now().duration_since(t0).as_micros_f64();
    assert!((us - 3.0).abs() < 0.2, "null op took {us:.3} µs, want ≈3.0");

    // Controller on the SmartNIC: 4.50 µs.
    let mut tb = Testbed::paper(3);
    let ctrl = tb.add_controller(CtrlPlacement::SmartNic(NodeId(0)));
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrl,
        Script::new(|_, fos| {
            fos.call(Syscall::Null, |s: &mut Script, res, _| s.results.push(res));
        }),
    );
    tb.start_process(p);
    let t0 = tb.now();
    tb.run();
    let us = tb.now().duration_since(t0).as_micros_f64();
    assert!(
        (us - 4.5).abs() < 0.3,
        "sNIC null op took {us:.3} µs, want ≈4.5"
    );
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = |seed| {
        let (mut tb, ctrls) = {
            let mut tb = Testbed::new(
                fractos_net::Topology::paper_testbed(),
                fractos_net::NetParams::paper_with_jitter(0.03),
                seed,
            );
            let ctrls = tb.controllers_per_node(false);
            (tb, ctrls)
        };
        let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(9, "svc"));
        let cli = tb.add_process(
            "cli",
            cpu(1),
            ctrls[1],
            Script::new(|_, fos| {
                fos.kv_get("svc", |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, _, _| {});
                });
            }),
        );
        tb.start_process(svc);
        tb.run();
        tb.start_process(cli);
        tb.run();
        (tb.now(), tb.sim.steps(), tb.traffic().network_msgs())
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11).0, run(12).0, "different seeds should jitter");
}

#[test]
fn congestion_window_serializes_syscalls() {
    let mut tb = Testbed::paper(5);
    let ctrl = tb.add_controller(CtrlPlacement::HostCpu(NodeId(0)));
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrl,
        Script::new(|_, fos| {
            fos.set_window(1);
            for _ in 0..10 {
                fos.call(Syscall::Null, |s: &mut Script, res, _| s.results.push(res));
            }
        }),
    );
    tb.start_process(p);
    tb.run();
    tb.with_service::<Script, _>(p, |s| assert_eq!(s.results.len(), 10));
    // With window 1, ten null ops take ≈ 10 × 3 µs.
    let us = tb.now().as_micros_f64();
    assert!(us > 25.0, "window=1 must serialize: {us:.1} µs");
}

#[test]
fn call_all_joins_concurrent_syscalls_in_order() {
    let mut tb = Testbed::paper(6);
    let ctrl = tb.add_controller(CtrlPlacement::HostCpu(NodeId(0)));
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrl,
        Script::new(|_, fos| {
            // Three concurrent creates: results must come back in call
            // order regardless of completion interleaving.
            let a1 = fos.mem_alloc(16);
            let a2 = fos.mem_alloc(32);
            fos.call_all(
                vec![
                    Syscall::MemoryCreate {
                        addr: a1,
                        size: 16,
                        perms: Perms::RW,
                    },
                    Syscall::Null,
                    Syscall::MemoryCreate {
                        addr: a2,
                        size: 32,
                        perms: Perms::READ,
                    },
                ],
                |s: &mut Script, results, _| {
                    assert_eq!(results.len(), 3);
                    assert!(matches!(results[0], SyscallResult::NewCid(_)));
                    assert_eq!(results[1], SyscallResult::Ok);
                    assert!(matches!(results[2], SyscallResult::NewCid(_)));
                    s.results.extend(results);
                },
            );
        }),
    );
    tb.start_process(p);
    tb.run();
    tb.with_service::<Script, _>(p, |s| assert_eq!(s.results.len(), 3));
}

#[test]
fn call_all_on_empty_input_still_completes() {
    let mut tb = Testbed::paper(6);
    let ctrl = tb.add_controller(CtrlPlacement::HostCpu(NodeId(0)));
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrl,
        Script::new(|_, fos| {
            fos.call_all(vec![], |s: &mut Script, results, _| {
                assert!(results.is_empty());
                s.results.push(SyscallResult::Ok);
            });
        }),
    );
    tb.start_process(p);
    tb.run();
    tb.with_service::<Script, _>(p, |s| assert_eq!(s.results.len(), 1));
}

#[test]
fn remote_diminish_creates_view_at_the_owner() {
    // The diminish of a capability owned by another Controller executes at
    // the owner and the view comes back usable.
    let (mut tb, ctrls) = two_ctrl_testbed();
    let owner = tb.add_process(
        "owner",
        cpu(0),
        ctrls[0],
        Script::new(|_, fos| {
            fos.memory_create_new(64, Perms::RW, |_s, addr, cid, fos| {
                let cid = cid.unwrap();
                fos.mem_write(addr, 16, &[7; 16]).unwrap();
                fos.kv_put("big", cid, |_, res, _| assert!(res.is_ok()));
            });
        }),
    );
    tb.start_process(owner);
    tb.run();

    let client = tb.add_process(
        "client",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("big", |_s, res, fos| {
                let big = res.cid();
                // Remote-owned capability: diminish to the middle 16 bytes.
                fos.call(
                    Syscall::MemoryDiminish {
                        cid: big,
                        offset: 16,
                        size: 16,
                        drop_perms: Perms::WRITE,
                    },
                    |_s, res, fos| {
                        let view = res.cid();
                        // Copy the view into a local buffer and verify.
                        fos.memory_create_new(
                            16,
                            Perms::RW,
                            move |s: &mut Script, addr, c, fos| {
                                let local = c.unwrap();
                                let _ = addr;
                                s.cids.push(local);
                                fos.memory_copy(view, local, |s: &mut Script, res, _| {
                                    s.results.push(res);
                                });
                            },
                        );
                    },
                );
            });
        }),
    );
    tb.start_process(client);
    tb.run();
    tb.with_service::<Script, _>(client, |s| {
        assert_eq!(s.results, vec![SyscallResult::Ok]);
    });
    // The copied bytes are the pattern written at offset 16.
    let bytes = tb.mem.borrow().read(client, 0x1000, 0, 16).unwrap();
    assert_eq!(bytes, vec![7; 16]);
}

#[test]
fn node_failure_implicitly_revokes_through_use() {
    // When a whole node (Controller included) fails, monitor state at the
    // dead owner is gone; §3.6's mechanism is *implicit* revocation —
    // capabilities pointing at the dead Controller fail fast on use once
    // the watchdog has spread the news.
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(1, "svc.req"));
    tb.start_process(svc);
    tb.run();

    let holder = tb.add_process(
        "holder",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |s: &mut Script, res, _| s.cids.push(res.cid()));
        }),
    );
    tb.start_process(holder);
    tb.run();

    // Node 0 dies: its Controller and the service go down together.
    tb.kill_node(NodeId(0));
    tb.run();

    let cid = tb.with_service::<Script, _>(holder, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(holder);
    fos.request_invoke(cid, |s, res, _| s.results.push(res));
    tb.poke(holder);
    tb.run();
    tb.with_service::<Script, _>(holder, |s| {
        assert!(
            matches!(
                s.results[0],
                SyscallResult::Err(FosError::ControllerUnreachable)
                    | SyscallResult::Err(FosError::ProcessFailed)
                    | SyscallResult::Err(FosError::Cap(_))
            ),
            "use after node failure must fail fast, got {:?}",
            s.results[0]
        );
    });
}

#[test]
fn capspace_quota_is_enforced() {
    let mut tb = Testbed::paper(6);
    let ctrl = tb.add_controller(CtrlPlacement::HostCpu(NodeId(0)));
    let p = tb.add_process(
        "p",
        cpu(0),
        ctrl,
        Script::new(|_, fos| {
            for _ in 0..4 {
                let addr = fos.mem_alloc(16);
                fos.memory_create(addr, 16, Perms::RW, |s: &mut Script, res, _| {
                    s.results.push(res);
                });
            }
        }),
    );
    tb.set_capspace_quota(p, 2);
    tb.start_process(p);
    tb.run();
    tb.with_service::<Script, _>(p, |s| {
        let ok = s.results.iter().filter(|r| r.is_ok()).count();
        let exhausted = s
            .results
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    SyscallResult::Err(FosError::Cap(CapError::SpaceExhausted))
                )
            })
            .count();
        assert_eq!(ok, 2, "exactly quota-many creations succeed");
        assert_eq!(exhausted, 2, "the rest hit the quota");
    });
}

#[test]
fn watchdog_detects_silent_controller_failure() {
    // No harness notifications: the watchdog's pings miss, it declares the
    // Controller dead, and peers run failure translation on their own.
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(1, "svc.req"));
    tb.start_process(svc);
    tb.run();

    let holder = tb.add_process(
        "holder",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |s: &mut Script, res, _| s.cids.push(res.cid()));
        }),
    );
    tb.start_process(holder);
    tb.run();

    let wd = tb.start_watchdog(NodeId(2));
    // Kill controller 0 without telling anyone.
    tb.kill_controller_silently(ctrls[0]);
    // Run long enough for missed pings to accumulate (3 × 200 µs + slack).
    let deadline = tb.now() + fractos_sim::SimDuration::from_millis(3);
    tb.run_until(deadline);

    tb.sim
        .with_actor::<fractos_core::WatchdogActor, _>(wd, |w| {
            assert_eq!(
                w.detected,
                vec![ctrls[0]],
                "watchdog must detect the failure"
            );
        });

    // Peers learned on their own: uses now fail fast.
    let cid = tb.with_service::<Script, _>(holder, |s| s.cids[0]);
    let fos = tb.fos_of::<Script>(holder);
    fos.request_invoke(cid, |s, res, _| s.results.push(res));
    tb.poke(holder);
    let deadline = tb.now() + fractos_sim::SimDuration::from_millis(1);
    tb.run_until(deadline);
    tb.with_service::<Script, _>(holder, |s| {
        assert!(
            matches!(s.results.first(), Some(SyscallResult::Err(_))),
            "use after detected failure must error, got {:?}",
            s.results
        );
    });
}

#[test]
fn revocation_racing_with_inflight_copy_is_safe() {
    // A revocation that lands while a large copy is in flight must leave
    // the system consistent: the copy either completed (data landed before
    // the revoke took effect at the owner) or failed with WindowInvalid —
    // and a *subsequent* copy always fails.
    let (mut tb, ctrls) = two_ctrl_testbed();
    let owner = tb.add_process(
        "owner",
        cpu(0),
        ctrls[0],
        Script::new(|_, fos| {
            fos.memory_create_new(256 * 1024, Perms::RW, |s: &mut Script, _a, cid, fos| {
                let cid = cid.unwrap();
                s.cids.push(cid);
                fos.kv_put("buf", cid, |_, _, _| {});
            });
        }),
    );
    tb.start_process(owner);
    tb.run();

    let client = tb.add_process(
        "client",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.memory_create_new(256 * 1024, Perms::RW, |s: &mut Script, _a, c, fos| {
                s.cids.push(c.unwrap());
                fos.kv_get("buf", |s: &mut Script, res, _| s.cids.push(res.cid()));
            });
        }),
    );
    tb.start_process(client);
    tb.run();

    // Fire the copy and the revoke "simultaneously".
    let (dst, src) = tb.with_service::<Script, _>(client, |s| (s.cids[0], s.cids[1]));
    let cfos = tb.fos_of::<Script>(client);
    cfos.memory_copy(src, dst, |s: &mut Script, res, _| s.results.push(res));
    tb.poke(client);

    let owner_cid = tb.with_service::<Script, _>(owner, |s| s.cids[0]);
    let ofos = tb.fos_of::<Script>(owner);
    ofos.call(Syscall::CapRevoke { cid: owner_cid }, |s, res, _| {
        assert!(res.is_ok());
        s.results.push(res);
    });
    tb.poke(owner);
    tb.run();

    let first = tb.with_service::<Script, _>(client, |s| s.results[0].clone());
    assert!(
        matches!(
            first,
            SyscallResult::Ok | SyscallResult::Err(FosError::WindowInvalid)
        ),
        "racing copy must complete or fail cleanly, got {first:?}"
    );

    // A fresh copy after the revoke settles must fail.
    let cfos = tb.fos_of::<Script>(client);
    cfos.memory_copy(src, dst, |s: &mut Script, res, _| s.results.push(res));
    tb.poke(client);
    tb.run();
    tb.with_service::<Script, _>(client, |s| {
        assert!(
            matches!(s.results[1], SyscallResult::Err(_)),
            "post-revocation copy must fail, got {:?}",
            s.results[1]
        );
    });
}

#[test]
fn revoking_a_base_request_kills_all_derived_requests() {
    // Refinements join the base's revocation tree (§3.4/§3.5): revoking
    // the provider's base endpoint invalidates every derived Request a
    // client pre-built from it.
    let (mut tb, ctrls) = two_ctrl_testbed();
    let svc = tb.add_process("svc", cpu(0), ctrls[0], Recorder::new(1, "svc.req"));
    tb.start_process(svc);
    tb.run();

    let cli = tb.add_process(
        "cli",
        cpu(1),
        ctrls[1],
        Script::new(|_, fos| {
            fos.kv_get("svc.req", |_s, res, fos| {
                let base = res.cid();
                fos.request_derive(
                    base,
                    vec![vec![1].into()],
                    vec![],
                    |s: &mut Script, res, fos| {
                        let d1 = res.cid();
                        s.cids.push(d1);
                        // A second-level refinement too.
                        fos.request_derive(
                            d1,
                            vec![vec![2].into()],
                            vec![],
                            |s: &mut Script, res, _| {
                                s.cids.push(res.cid());
                            },
                        );
                    },
                );
            });
        }),
    );
    tb.start_process(cli);
    tb.run();

    // The provider revokes its base endpoint (cid 0, its first object).
    let fos = tb.fos_of::<Recorder>(svc);
    fos.call(Syscall::CapRevoke { cid: Cid(0) }, |_, res, _| {
        assert!(res.is_ok())
    });
    tb.poke(svc);
    // Stop before the cleanup broadcast scrubs the client's cids so the
    // invoke exercises owner-side rejection.
    let deadline = tb.now() + fractos_sim::SimDuration::from_micros(20);
    tb.run_until(deadline);

    let (d1, d2) = tb.with_service::<Script, _>(cli, |s| (s.cids[0], s.cids[1]));
    let fos = tb.fos_of::<Script>(cli);
    fos.request_invoke(d1, |s, res, _| s.results.push(res));
    fos.request_invoke(d2, |s, res, _| s.results.push(res));
    tb.poke(cli);
    tb.run();
    tb.with_service::<Script, _>(cli, |s| {
        for r in &s.results {
            assert!(
                matches!(r, SyscallResult::Err(FosError::Cap(CapError::Revoked(_)))),
                "derived request must be revoked with the base, got {r:?}"
            );
        }
        assert_eq!(s.results.len(), 2);
    });
}
