//! Property tests for the wire codec: every protocol value must survive an
//! encode/decode round trip, and decoding never panics on garbage.

use proptest::prelude::*;

use fractos_cap::{CapRef, Cid, ControllerAddr, Epoch, ObjectId, Perms};
use fractos_core::types::{
    Arg, CapArg, IncomingRequest, MemoryDesc, ProcId, RequestDesc, Syscall, SyscallResult,
};
use fractos_core::wire::Wire;
use fractos_net::{Endpoint, Location, NodeId};

fn arb_capref() -> impl Strategy<Value = CapRef> {
    (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(c, e, o)| CapRef {
        ctrl: ControllerAddr(c),
        epoch: Epoch(e),
        object: ObjectId(o),
    })
}

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<u32>(), 0u8..4, any::<u8>()).prop_map(|(n, kind, sub)| Endpoint {
        node: NodeId(n),
        loc: match kind {
            0 => Location::HostCpu,
            1 => Location::SmartNic,
            2 => Location::Gpu(sub),
            _ => Location::Nvme(sub),
        },
    })
}

fn arb_memdesc() -> impl Strategy<Value = MemoryDesc> {
    (
        any::<u32>(),
        arb_endpoint(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u8..4,
    )
        .prop_map(|(p, location, addr, view_off, size, perms)| MemoryDesc {
            proc: ProcId(p),
            location,
            addr,
            view_off,
            size,
            perms: Perms::from_bits(perms),
        })
}

fn arb_arg() -> impl Strategy<Value = Arg> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|v| Arg::Imm(v.into())),
        (arb_capref(), prop::option::of(arb_memdesc()))
            .prop_map(|(cap, mem)| Arg::Cap(CapArg { cap, mem })),
    ]
}

fn arb_syscall() -> impl Strategy<Value = Syscall> {
    prop_oneof![
        Just(Syscall::Null),
        (any::<u64>(), any::<u64>(), 0u8..4).prop_map(|(addr, size, p)| Syscall::MemoryCreate {
            addr,
            size,
            perms: Perms::from_bits(p)
        }),
        (any::<u32>(), any::<u64>(), any::<u64>(), 0u8..4).prop_map(|(c, o, s, p)| {
            Syscall::MemoryDiminish {
                cid: Cid(c),
                offset: o,
                size: s,
                drop_perms: Perms::from_bits(p),
            }
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Syscall::MemoryCopy {
            src: Cid(a),
            dst: Cid(b)
        }),
        (
            prop::option::of(any::<u32>()),
            any::<u64>(),
            prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..4),
            prop::collection::vec(any::<u32>(), 0..4),
        )
            .prop_map(|(base, tag, imms, caps)| Syscall::RequestCreate {
                base: base.map(Cid),
                tag,
                imms: imms.into_iter().map(Into::into).collect(),
                caps: caps.into_iter().map(Cid).collect(),
            }),
        any::<u32>().prop_map(|c| Syscall::RequestInvoke { cid: Cid(c) }),
        any::<u32>().prop_map(|c| Syscall::CapCreateRevtree { cid: Cid(c) }),
        any::<u32>().prop_map(|c| Syscall::CapRevoke { cid: Cid(c) }),
        (any::<u32>(), any::<u64>()).prop_map(|(c, cb)| Syscall::MonitorDelegate {
            cid: Cid(c),
            callback_id: cb
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(c, cb)| Syscall::MonitorReceive {
            cid: Cid(c),
            callback_id: cb
        }),
        any::<u32>().prop_map(|c| Syscall::MemoryStat { cid: Cid(c) }),
        ("[a-z.]{0,16}", any::<u32>()).prop_map(|(key, c)| Syscall::KvPut { key, cid: Cid(c) }),
        "[a-z.]{0,16}".prop_map(|key| Syscall::KvGet { key }),
    ]
}

proptest! {
    #[test]
    fn syscalls_roundtrip(sc in arb_syscall()) {
        let bytes = sc.to_bytes();
        prop_assert_eq!(Syscall::from_bytes(&bytes).unwrap(), sc.clone());
        prop_assert_eq!(sc.wire_size(), bytes.len() as u64);
    }

    #[test]
    fn request_descs_roundtrip(
        provider in any::<u32>(),
        tag in any::<u64>(),
        args in prop::collection::vec(arb_arg(), 0..8),
    ) {
        let desc = RequestDesc {
            provider: ProcId(provider),
            tag,
            args,
        };
        let bytes = desc.to_bytes();
        prop_assert_eq!(RequestDesc::from_bytes(&bytes).unwrap(), desc);
    }

    #[test]
    fn incoming_requests_roundtrip(
        tag in any::<u64>(),
        imms in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..6),
        caps in prop::collection::vec(any::<u32>(), 0..6),
    ) {
        let req = IncomingRequest {
            tag,
            imms: imms.into_iter().map(Into::into).collect(),
            caps: caps.into_iter().map(Cid).collect(),
        };
        let bytes = req.to_bytes();
        prop_assert_eq!(IncomingRequest::from_bytes(&bytes).unwrap(), req);
    }

    #[test]
    fn results_roundtrip(which in 0u8..4, v in any::<u64>()) {
        let res = match which {
            0 => SyscallResult::Ok,
            1 => SyscallResult::NewCid(Cid(v as u32)),
            2 => SyscallResult::Value(v),
            _ => SyscallResult::Stat { addr: v, off: v / 2, size: v / 3 },
        };
        let bytes = res.to_bytes();
        prop_assert_eq!(SyscallResult::from_bytes(&bytes).unwrap(), res);
    }

    /// Decoding arbitrary garbage must error or succeed — never panic.
    #[test]
    fn decoding_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Syscall::from_bytes(&bytes);
        let _ = SyscallResult::from_bytes(&bytes);
        let _ = RequestDesc::from_bytes(&bytes);
        let _ = IncomingRequest::from_bytes(&bytes);
        let _ = CapRef::from_bytes(&bytes);
        let _ = MemoryDesc::from_bytes(&bytes);
    }

    /// Truncating a valid encoding always fails to decode (no silent
    /// partial reads).
    #[test]
    fn truncation_always_detected(sc in arb_syscall(), cut_frac in 0.0f64..1.0) {
        let bytes = sc.to_bytes();
        if bytes.len() > 1 {
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(Syscall::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
