//! Negative fixtures for the static request-program verifier: each known
//! defect class must be rejected with its typed [`VerifyErrorKind`], and
//! the rejection must also surface end-to-end as `FosError::Verify` when
//! a Process invokes a defective plan on a live cluster.

use fractos_cap::{CapRef, ObjectId, ObjectTable};
use fractos_core::prelude::*;
use fractos_core::types::{Arg, CapArg, MemoryDesc, ObjPayload, RequestDesc};
use fractos_core::{verify_plan, verify_syscall, verify_table, VerifyErrorKind};

const CTRL: ControllerAddr = ControllerAddr(0);

fn table() -> ObjectTable<ObjPayload> {
    ObjectTable::new(CTRL)
}

fn mem(perms: Perms, off: u64, size: u64) -> MemoryDesc {
    MemoryDesc {
        proc: ProcId(1),
        location: Endpoint::cpu(NodeId(0)),
        addr: 0x1000,
        view_off: off,
        size,
        perms,
    }
}

fn request(args: Vec<Arg>) -> ObjPayload {
    ObjPayload::Request(RequestDesc {
        provider: ProcId(1),
        tag: 7,
        args,
    })
}

fn cap_arg(cap: CapRef) -> Arg {
    Arg::Cap(CapArg { cap, mem: None })
}

#[test]
fn dangling_cap_rejected() {
    let mut t = table();
    // The argument references an object id never created in this table.
    let probe = t.create(ProcId(1).token(), request(vec![]));
    let ghost = CapRef {
        object: ObjectId(0xDEAD),
        ..probe
    };
    let root = t.create(ProcId(1).token(), request(vec![cap_arg(ghost)]));
    let e = verify_plan(&t, root).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::DanglingCap);
    // The diagnostic names the argument index the walk descended through.
    assert!(e.to_string().contains("arg[0]"), "got: {e}");
}

#[test]
fn revoked_cap_rejected() {
    let mut t = table();
    let m = t.create(ProcId(1).token(), ObjPayload::Memory(mem(Perms::RW, 0, 64)));
    let root = t.create(ProcId(1).token(), request(vec![cap_arg(m)]));
    t.revoke(m.object).expect("revocable");
    let e = verify_plan(&t, root).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::RevokedCap);
}

#[test]
fn stale_epoch_cap_rejected() {
    let mut t = table();
    let m = t.create(ProcId(1).token(), ObjPayload::Memory(mem(Perms::RW, 0, 64)));
    t.reboot();
    // A root built in the *new* epoch still carrying the old-epoch Memory
    // cap: the use-after-reboot must be caught.
    let root = t.create(ProcId(1).token(), request(vec![cap_arg(m)]));
    let e = verify_plan(&t, root).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::StaleEpoch);
}

#[test]
fn perm_escalating_snapshot_rejected() {
    let mut t = table();
    let m = t.create(
        ProcId(1).token(),
        ObjPayload::Memory(mem(Perms::READ, 0, 64)),
    );
    let root = t.create(
        ProcId(1).token(),
        request(vec![Arg::Cap(CapArg {
            cap: m,
            // Snapshot claims RW; the live object grants READ only.
            mem: Some(mem(Perms::RW, 0, 64)),
        })]),
    );
    let e = verify_plan(&t, root).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::PrivilegeEscalation);
}

#[test]
fn perm_escalating_derivation_rejected() {
    let mut t = table();
    let parent = t.create(
        ProcId(1).token(),
        ObjPayload::Memory(mem(Perms::READ, 0, 64)),
    );
    // The table's derive() does not inspect payloads, so a forged child
    // claiming WRITE its parent never granted can exist; the verifier
    // walks the derivation edge and rejects it.
    let child = t
        .derive(
            parent.object,
            ProcId(1).token(),
            ObjPayload::Memory(mem(Perms::RW, 0, 32)),
        )
        .expect("derivable");
    let root = t.create(ProcId(1).token(), request(vec![cap_arg(child)]));
    let e = verify_plan(&t, root).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::PrivilegeEscalation);
}

#[test]
fn out_of_bounds_view_rejected() {
    let mut t = table();
    let parent = t.create(
        ProcId(1).token(),
        ObjPayload::Memory(mem(Perms::RW, 16, 16)),
    );
    // Same permissions, but the view reaches outside the parent extent.
    let child = t
        .derive(
            parent.object,
            ProcId(1).token(),
            ObjPayload::Memory(mem(Perms::RW, 8, 16)),
        )
        .expect("derivable");
    let root = t.create(ProcId(1).token(), request(vec![cap_arg(child)]));
    let e = verify_plan(&t, root).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::PrivilegeEscalation);
}

#[test]
fn cyclic_continuation_chain_rejected() {
    let mut t = table();
    let a = t.create(ProcId(1).token(), request(vec![]));
    let b = t.create(ProcId(1).token(), request(vec![cap_arg(a)]));
    // Close the loop a -> b -> a through the payload editor.
    match t.payload_mut(a) {
        Ok(ObjPayload::Request(ra)) => ra.args.push(cap_arg(b)),
        other => panic!("payload editable, got {other:?}"),
    }
    let e = verify_plan(&t, a).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::CyclicContinuation);
    let e = verify_plan(&t, b).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::CyclicContinuation);
}

#[test]
fn self_cycle_rejected() {
    let mut t = table();
    let a = t.create(ProcId(1).token(), request(vec![]));
    match t.payload_mut(a) {
        Ok(ObjPayload::Request(ra)) => ra.args.push(cap_arg(a)),
        other => panic!("payload editable, got {other:?}"),
    }
    let e = verify_plan(&t, a).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::CyclicContinuation);
}

#[test]
fn shared_continuation_diamond_verifies() {
    // a -> {b, c} -> d (d shared): a DAG, not a cycle — must pass.
    let mut t = table();
    let d = t.create(ProcId(1).token(), request(vec![]));
    let b = t.create(ProcId(1).token(), request(vec![cap_arg(d)]));
    let c = t.create(ProcId(1).token(), request(vec![cap_arg(d)]));
    let a = t.create(ProcId(1).token(), request(vec![cap_arg(b), cap_arg(c)]));
    let report = verify_plan(&t, a).expect("diamond is acyclic");
    assert_eq!(report.nodes, 4, "d must be verified once, not twice");
}

#[test]
fn refinement_must_extend_append_only() {
    let mut t = table();
    let base = t.create(
        ProcId(1).token(),
        request(vec![Arg::Imm(vec![1].into()), Arg::Imm(vec![2].into())]),
    );
    // A proper refinement extends the base: verifies.
    let good = t
        .derive(
            base.object,
            ProcId(1).token(),
            request(vec![
                Arg::Imm(vec![1].into()),
                Arg::Imm(vec![2].into()),
                Arg::Imm(vec![3].into()),
            ]),
        )
        .expect("derivable");
    verify_plan(&t, good).expect("append-only refinement verifies");
    // A forged refinement that rewrites the base prefix: rejected.
    let forged = t
        .derive(
            base.object,
            ProcId(1).token(),
            request(vec![Arg::Imm(vec![9].into()), Arg::Imm(vec![2].into())]),
        )
        .expect("derivable");
    let e = verify_plan(&t, forged).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::RefinementViolation);
}

#[test]
fn missing_write_perm_on_copy_rejected() {
    let sc = Syscall::MemoryCopy {
        src: Cid(0),
        dst: Cid(1),
    };
    let e = verify_syscall(&sc, |cid| {
        Some(if cid == Cid(0) {
            mem(Perms::RW, 0, 16)
        } else {
            mem(Perms::READ, 0, 16)
        })
    })
    .unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::MissingPerm(Perms::WRITE));
}

#[test]
fn missing_read_perm_on_copy_rejected() {
    let sc = Syscall::MemoryCopy {
        src: Cid(0),
        dst: Cid(1),
    };
    let e = verify_syscall(&sc, |_| Some(mem(Perms::WRITE, 0, 16))).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::MissingPerm(Perms::READ));
}

#[test]
fn verify_table_sweeps_every_live_plan() {
    let mut t = table();
    let m = t.create(ProcId(1).token(), ObjPayload::Memory(mem(Perms::RW, 0, 64)));
    t.create(ProcId(1).token(), request(vec![cap_arg(m)]));
    t.create(ProcId(2).token(), request(vec![]));
    assert_eq!(verify_table(&t).expect("all clean"), 2);
    // Revoke the Memory: the plan that carries it must now fail the sweep.
    t.revoke(m.object).expect("revocable");
    let e = verify_table(&t).unwrap_err();
    assert_eq!(e.kind, VerifyErrorKind::RevokedCap);
}

/// End-to-end: a Request whose argument capability is revoked after the
/// plan was built is rejected at submission with the typed verifier error
/// — the provider never sees the delivery.
#[test]
fn invoke_of_plan_with_revoked_arg_is_rejected() {
    struct Provider {
        delivered: u32,
    }
    impl Service for Provider {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.request_create_new(0x77, vec![], vec![], |_s, res, fos| {
                fos.kv_put("svc", res.cid(), |_, _, _| {});
            });
        }
        fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {
            self.delivered += 1;
        }
    }

    #[derive(Default)]
    struct Client {
        buf: Option<Cid>,
        plan: Option<Cid>,
        invoke_result: Option<SyscallResult>,
    }
    impl Service for Client {
        fn on_start(&mut self, fos: &Fos<Self>) {
            // Build a plan carrying a Memory cap; the test revokes the
            // Memory *before* invoking.
            fos.memory_create_new(32, Perms::RW, |s: &mut Client, _addr, cid, fos| {
                let buf = cid.expect("created");
                s.buf = Some(buf);
                fos.kv_get("svc", move |_s: &mut Client, res, fos| {
                    fos.request_derive(res.cid(), vec![], vec![buf], |s: &mut Client, res, _| {
                        s.plan = Some(res.cid());
                    });
                });
            });
        }
        fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
    }

    let mut tb = Testbed::paper(7);
    let ctrls = tb.controllers_per_node(false);
    let provider = tb.add_process("provider", cpu(0), ctrls[0], Provider { delivered: 0 });
    let client = tb.add_process("client", cpu(0), ctrls[0], Client::default());
    tb.start_process(provider);
    tb.run();
    tb.start_process(client);
    tb.run();

    // Everything built so far verifies clean, on every Controller.
    assert!(tb.verify_all_plans().expect("all plans verify") >= 2);

    let (buf, plan) = tb.with_service::<Client, _>(client, |c| {
        (c.buf.expect("buf built"), c.plan.expect("plan built"))
    });

    // Revoke the Memory argument, then invoke the plan.
    let fos = tb.fos_of::<Client>(client);
    fos.call(Syscall::CapRevoke { cid: buf }, |_, res, _| {
        assert!(res.is_ok(), "revoke must succeed, got {res:?}");
    });
    tb.poke(client);
    tb.run();

    let fos = tb.fos_of::<Client>(client);
    fos.request_invoke(plan, |s: &mut Client, res, _| {
        s.invoke_result = Some(res);
    });
    tb.poke(client);
    tb.run();

    tb.with_service::<Client, _>(client, |c| {
        match c.invoke_result.as_ref().expect("invoke completed") {
            SyscallResult::Err(FosError::Verify(v)) => {
                assert_eq!(v.kind, VerifyErrorKind::RevokedCap, "diagnostic: {v}");
            }
            other => panic!("expected Verify(RevokedCap), got {other:?}"),
        }
    });
    tb.with_service::<Provider, _>(provider, |p| {
        assert_eq!(p.delivered, 0, "defective plan must never be delivered");
    });
}
