//! Thread-safe shared state for simulation components.
//!
//! Actors share substrate state — the fabric model, the cluster directory,
//! the memory store — through [`Shared`] handles. The wrapper is a thin
//! `Arc<Mutex<T>>` with the `borrow`/`borrow_mut` vocabulary of `RefCell`,
//! which the codebase used before the parallel sharded backend existed:
//! the single-threaded engine never contends, so the uncontended-lock fast
//! path costs about as much as `RefCell` bookkeeping did, and the same
//! actor code runs unmodified on the multi-threaded backend.
//!
//! # Lock discipline
//!
//! Guards are held for single statements or short blocks, never across a
//! send to another actor, and nested guards of the *same* handle deadlock
//! (unlike `RefCell`, which allowed shared re-borrows) — callers copy what
//! they need out of a guard before taking another.
//!
//! # Canonical acquisition order
//!
//! When guards of *different* classes must nest, they nest in one global
//! order, outermost first:
//!
//! 1. `inner` — a component's own state (`FosInner`, controller state
//!    machines, join state);
//! 2. `dir` — the cluster directory;
//! 3. `mem` — the memory store;
//! 4. `fabric` — the network model.
//!
//! Substrate handles (`dir`/`mem`/`fabric`) are leaves relative to each
//! other: no code path holds one while taking another. The order is
//! machine-checked twice over: statically by `fractos-analyze`'s
//! lock-order pass (may-hold-while-acquiring graph must be acyclic) and
//! dynamically by the [`lockdep`](crate::lockdep) witness (enable the
//! `lockdep` feature; [`Shared::named`] handles report actual acquisition
//! orders and any inversion panics with both sites).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A cloneable, thread-safe, mutably borrowable handle to `T`.
pub struct Shared<T> {
    inner: Arc<Mutex<T>>,
    /// Lock class for the lockdep witness; `None` handles are unwitnessed.
    /// Present unconditionally (one word) so enabling the feature cannot
    /// change struct layouts mid-debug-session.
    name: Option<&'static str>,
}

/// An acquired [`Shared`] lock.
///
/// Dereferences to `T` exactly like the `MutexGuard` it wraps. Under the
/// `lockdep` feature, dropping the guard also retires the acquisition from
/// the witness's per-thread held stack.
pub struct SharedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(feature = "lockdep")]
    class: Option<&'static str>,
}

impl<T> Deref for SharedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for SharedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.guard, f)
    }
}

#[cfg(feature = "lockdep")]
impl<T> Drop for SharedGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(class) = self.class {
            crate::lockdep::on_release(class);
        }
    }
}

impl<T> Shared<T> {
    /// Wraps `value` in a fresh shared handle.
    ///
    /// The handle is anonymous: the lockdep witness skips it. Use
    /// [`named`](Shared::named) for substrate state whose guards can nest
    /// with other classes.
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(Mutex::new(value)),
            name: None,
        }
    }

    /// Wraps `value` in a shared handle carrying a lock-class name for
    /// the [`lockdep`](crate::lockdep) witness.
    ///
    /// The name identifies the *class*, not the instance: all fabric
    /// handles share `"fabric"`. See the canonical acquisition order in
    /// the module docs.
    pub fn named(name: &'static str, value: T) -> Self {
        Shared {
            inner: Arc::new(Mutex::new(value)),
            name: Some(name),
        }
    }

    /// The lock-class name, if this handle is witnessed.
    pub fn name(&self) -> Option<&'static str> {
        self.name
    }

    /// Locks the value for shared-style access.
    ///
    /// The name mirrors `RefCell::borrow` for call-site compatibility; the
    /// guard is exclusive either way.
    ///
    /// Poisoning is recovered, not propagated: shared simulation state is
    /// deterministic and mutated only under single-statement guards (see
    /// the module docs), so a worker that panicked while holding the lock
    /// cannot have left the value torn — the panic itself is the failure
    /// to report, and letting every other shard panic on "poisoned" would
    /// bury it in a cascade.
    #[track_caller]
    pub fn borrow(&self) -> SharedGuard<'_, T> {
        self.acquire()
    }

    /// Locks the value for mutable access.
    ///
    /// Recovers from poisoning exactly like [`borrow`](Shared::borrow).
    #[track_caller]
    pub fn borrow_mut(&self) -> SharedGuard<'_, T> {
        self.acquire()
    }

    // analyze: lock-primitive
    #[track_caller]
    fn acquire(&self) -> SharedGuard<'_, T> {
        // The witness runs *before* the lock call: a same-class re-entry
        // then panics with both sites instead of deadlocking silently.
        #[cfg(feature = "lockdep")]
        let class = self.name.inspect(|n| {
            crate::lockdep::on_acquire(n, std::panic::Location::caller());
        });
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        SharedGuard {
            guard,
            #[cfg(feature = "lockdep")]
            class,
        }
    }

    /// Whether two handles refer to the same underlying value.
    pub fn ptr_eq(&self, other: &Shared<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared {
            inner: Arc::clone(&self.inner),
            name: self.name,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Shared").field(&&*guard).finish(),
            Err(_) => f.write_str("Shared(<locked>)"),
        }
    }
}

impl<T: Default> Default for Shared<T> {
    fn default() -> Self {
        Shared::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_alias_one_value() {
        let a = Shared::new(1u32);
        let b = a.clone();
        *b.borrow_mut() += 1;
        assert_eq!(*a.borrow(), 2);
        assert!(a.ptr_eq(&b));
        assert!(!a.ptr_eq(&Shared::new(2)));
    }

    #[test]
    fn named_handles_expose_their_class() {
        let s = Shared::named("fabric", 0u8);
        assert_eq!(s.name(), Some("fabric"));
        assert_eq!(s.clone().name(), Some("fabric"));
        assert_eq!(Shared::new(0u8).name(), None);
    }

    #[test]
    fn crosses_threads() {
        let s = Shared::new(0u64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *s.borrow_mut() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*s.borrow(), 4000);
    }
}
