//! Thread-safe shared state for simulation components.
//!
//! Actors share substrate state — the fabric model, the cluster directory,
//! the memory store — through [`Shared`] handles. The wrapper is a thin
//! `Arc<Mutex<T>>` with the `borrow`/`borrow_mut` vocabulary of `RefCell`,
//! which the codebase used before the parallel sharded backend existed:
//! the single-threaded engine never contends, so the uncontended-lock fast
//! path costs about as much as `RefCell` bookkeeping did, and the same
//! actor code runs unmodified on the multi-threaded backend.
//!
//! Lock discipline: guards are held for single statements or short blocks,
//! never across a send to another actor, and nested guards of the *same*
//! handle deadlock (unlike `RefCell`, which allowed shared re-borrows) —
//! callers copy what they need out of a guard before taking another.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A cloneable, thread-safe, mutably borrowable handle to `T`.
pub struct Shared<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Shared<T> {
    /// Wraps `value` in a fresh shared handle.
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Locks the value for shared-style access.
    ///
    /// The name mirrors `RefCell::borrow` for call-site compatibility; the
    /// guard is exclusive either way.
    ///
    /// Poisoning is recovered, not propagated: shared simulation state is
    /// deterministic and mutated only under single-statement guards (see
    /// the module docs), so a worker that panicked while holding the lock
    /// cannot have left the value torn — the panic itself is the failure
    /// to report, and letting every other shard panic on "poisoned" would
    /// bury it in a cascade.
    pub fn borrow(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the value for mutable access.
    ///
    /// Recovers from poisoning exactly like [`borrow`](Shared::borrow).
    pub fn borrow_mut(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether two handles refer to the same underlying value.
    pub fn ptr_eq(&self, other: &Shared<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Shared").field(&&*guard).finish(),
            Err(_) => f.write_str("Shared(<locked>)"),
        }
    }
}

impl<T: Default> Default for Shared<T> {
    fn default() -> Self {
        Shared::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_alias_one_value() {
        let a = Shared::new(1u32);
        let b = a.clone();
        *b.borrow_mut() += 1;
        assert_eq!(*a.borrow(), 2);
        assert!(a.ptr_eq(&b));
        assert!(!a.ptr_eq(&Shared::new(2)));
    }

    #[test]
    fn crosses_threads() {
        let s = Shared::new(0u64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *s.borrow_mut() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*s.borrow(), 4000);
    }
}
