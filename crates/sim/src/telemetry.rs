//! The continuous telemetry plane: virtual-time event sourcing behind
//! `Runtime::enable_telemetry`/`take_telemetry`.
//!
//! # Design
//!
//! Telemetry is *event-sourced*: instrumented components emit timestamped
//! points — counter deltas, gauge values, latency samples — at the instant
//! the underlying quantity changes, through [`crate::Ctx`]. The periodic
//! time series the exporters publish (one row per sampling window) is
//! *derived* from those points after the run, by bucketing them at
//! period boundaries in virtual time (see `fractos-obs`). Nothing ever
//! polls live state: on the sharded engine shards progress concurrently,
//! so a wall-tick sampler reading peers' state would observe racy,
//! backend-dependent values. Derived windows are instead a pure function
//! of the recorded points:
//!
//! - **counter deltas** and **samples** are summed (resp. folded into a
//!   [`crate::StreamHist`]) per window — order-independent, so the shard
//!   interleaving cannot leak into the output;
//! - **gauges** take the last value in the window, ordered by
//!   `(time, actor, ord)`; gauge series are single-writer by convention
//!   (the series name embeds the owning node/actor), which makes that
//!   order total and backend-independent.
//!
//! # Determinism rules
//!
//! The rules mirror the span subsystem ([`crate::span`]): recording
//! consumes **zero** RNG draws, never reads a wall clock (the
//! `fractos-lint` wall-clock rule is fenced around this module like every
//! other product module), and while disabled the store is `None` — no
//! allocation, no counters, no perturbation, so telemetry-off runs are
//! byte-identical to builds without the subsystem.
//!
//! The sampling *period* only parameterizes the derivation, not the run:
//! two runs with different periods execute identical event sequences.

use std::collections::HashMap;

use crate::engine::ActorId;
use crate::time::{SimDuration, SimTime};

/// What a telemetry point carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryKind {
    /// A delta to a monotone counter (bytes sent, faults injected, busy
    /// nanoseconds accumulated). Windows sum deltas, so emission order is
    /// irrelevant.
    Count(u64),
    /// An instantaneous level (inflight requests, queue depth). Windows
    /// keep the last value; the series must be single-writer.
    Gauge(u64),
    /// One latency/size observation, folded into a streaming histogram
    /// per window. Order-irrelevant.
    Sample(u64),
}

/// One telemetry point: a series name, a kind, and its position in
/// virtual time. `(actor, ord)` breaks ties among same-instant points of
/// one series exactly like span records do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Virtual time of the observation.
    pub time: SimTime,
    /// The actor that recorded it (or a harness sentinel for points
    /// sourced outside any actor, e.g. the fabric model).
    pub actor: ActorId,
    /// Per-actor emission index; `(actor, ord)` is unique and identical
    /// across backends, giving the canonical sort its total order.
    pub ord: u64,
    /// Dotted series name, e.g. `link.0-1.bytes` or `app.fv.latency_ns`.
    pub series: String,
    /// The observation.
    pub kind: TelemetryKind,
}

/// Accumulates [`TelemetryEvent`]s for one engine (or one shard of the
/// sharded engine), with per-actor ordinal counters like
/// [`crate::SpanStore`].
#[derive(Debug, Default)]
pub struct TelemetryStore {
    ords: HashMap<u32, u64>,
    events: Vec<TelemetryEvent>,
}

impl TelemetryStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        TelemetryStore::default()
    }

    /// Records one point on `actor` at `time`.
    pub fn record(&mut self, actor: ActorId, time: SimTime, series: String, kind: TelemetryKind) {
        let counter = self.ords.entry(actor.index() as u32).or_insert(0);
        let ord = *counter;
        *counter += 1;
        self.events.push(TelemetryEvent {
            time,
            actor,
            ord,
            series,
            kind,
        });
    }

    /// Drains the recorded events, leaving ordinal counters intact so
    /// later points keep minting fresh `(actor, ord)` keys.
    pub fn take(&mut self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Sorts events into the canonical cross-backend order:
/// `(time, series, actor, ord)`. `(actor, ord)` is unique per engine
/// store, so engine-sourced events order totally; harness-sourced points
/// (sentinel actor) are order-free counter deltas, for which any stable
/// order yields identical derived windows.
pub fn sort_canonical_telemetry(events: &mut [TelemetryEvent]) {
    events.sort_by(|a, b| {
        (a.time, &a.series, a.actor.index(), a.ord).cmp(&(
            b.time,
            &b.series,
            b.actor.index(),
            b.ord,
        ))
    });
}

/// Sentinel actor id for telemetry sourced outside any actor (the fabric
/// model, harness probes). Not a registered actor; only used as a sort
/// key component.
pub const TELEMETRY_EXTERNAL: ActorId = ActorId::from_raw(u32::MAX);

/// Telemetry plane configuration: the virtual-time sampling period used
/// to derive window series from the recorded points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Window width in virtual time.
    pub period: SimDuration,
}

impl TelemetryConfig {
    /// Default sampling period (50 µs of virtual time — fine enough to
    /// resolve the µs-scale request phases the paper studies, coarse
    /// enough that exports stay compact).
    pub const DEFAULT_PERIOD: SimDuration = SimDuration::from_micros(50);

    /// Parses `FRACTOS_TELEMETRY`. Unset, empty, `0` or `off` disable the
    /// plane (the default). `1` or `on` enable it at
    /// [`DEFAULT_PERIOD`](TelemetryConfig::DEFAULT_PERIOD); otherwise the
    /// value is a period: `<n>ns`, `<n>us`, `<n>ms`, or a bare integer
    /// (microseconds).
    pub fn from_env() -> Option<Self> {
        TelemetryConfig::parse(std::env::var("FRACTOS_TELEMETRY").ok().as_deref())
    }

    /// Pure parser behind [`TelemetryConfig::from_env`] (testable without
    /// touching the process environment).
    pub fn parse(value: Option<&str>) -> Option<Self> {
        let v = value?.trim();
        match v {
            "" | "0" | "off" => None,
            "1" | "on" => Some(TelemetryConfig {
                period: TelemetryConfig::DEFAULT_PERIOD,
            }),
            _ => {
                let (digits, unit) = match v.find(|c: char| !c.is_ascii_digit()) {
                    Some(pos) => v.split_at(pos),
                    None => (v, "us"),
                };
                let n: u64 = digits.parse().ok()?;
                let period = match unit {
                    "ns" => SimDuration::from_nanos(n),
                    "us" => SimDuration::from_micros(n),
                    "ms" => SimDuration::from_millis(n),
                    _ => return None,
                };
                if period == SimDuration::ZERO {
                    None
                } else {
                    Some(TelemetryConfig { period })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn ords_are_per_actor_and_survive_take() {
        let mut s = TelemetryStore::new();
        s.record(
            ActorId::from_raw(0),
            at(1),
            "a".into(),
            TelemetryKind::Count(1),
        );
        s.record(
            ActorId::from_raw(1),
            at(1),
            "a".into(),
            TelemetryKind::Count(1),
        );
        s.record(
            ActorId::from_raw(0),
            at(2),
            "a".into(),
            TelemetryKind::Count(1),
        );
        let events = s.take();
        assert_eq!(
            events.iter().map(|e| e.ord).collect::<Vec<_>>(),
            vec![0, 0, 1]
        );
        s.record(
            ActorId::from_raw(0),
            at(3),
            "a".into(),
            TelemetryKind::Count(1),
        );
        assert_eq!(s.take()[0].ord, 2);
    }

    #[test]
    fn canonical_sort_orders_time_series_actor_ord() {
        let mut s = TelemetryStore::new();
        s.record(
            ActorId::from_raw(1),
            at(5),
            "b".into(),
            TelemetryKind::Gauge(2),
        );
        s.record(
            ActorId::from_raw(0),
            at(5),
            "b".into(),
            TelemetryKind::Gauge(1),
        );
        s.record(
            ActorId::from_raw(0),
            at(5),
            "a".into(),
            TelemetryKind::Gauge(3),
        );
        s.record(
            ActorId::from_raw(0),
            at(1),
            "z".into(),
            TelemetryKind::Gauge(4),
        );
        let mut events = s.take();
        sort_canonical_telemetry(&mut events);
        let keys: Vec<(u64, &str)> = events
            .iter()
            .map(|e| (e.time.as_nanos(), e.series.as_str()))
            .collect();
        assert_eq!(keys, vec![(1, "z"), (5, "a"), (5, "b"), (5, "b")]);
        assert_eq!(events[2].actor, ActorId::from_raw(0));
        assert_eq!(events[3].actor, ActorId::from_raw(1));
    }

    #[test]
    fn config_parsing() {
        assert_eq!(TelemetryConfig::parse(None), None);
        assert_eq!(TelemetryConfig::parse(Some("")), None);
        assert_eq!(TelemetryConfig::parse(Some("0")), None);
        assert_eq!(TelemetryConfig::parse(Some("off")), None);
        assert_eq!(
            TelemetryConfig::parse(Some("1")).map(|c| c.period),
            Some(TelemetryConfig::DEFAULT_PERIOD)
        );
        assert_eq!(
            TelemetryConfig::parse(Some("on")).map(|c| c.period),
            Some(TelemetryConfig::DEFAULT_PERIOD)
        );
        assert_eq!(
            TelemetryConfig::parse(Some("25")).map(|c| c.period),
            Some(SimDuration::from_micros(25))
        );
        assert_eq!(
            TelemetryConfig::parse(Some("250ns")).map(|c| c.period),
            Some(SimDuration::from_nanos(250))
        );
        assert_eq!(
            TelemetryConfig::parse(Some("2ms")).map(|c| c.period),
            Some(SimDuration::from_millis(2))
        );
        assert_eq!(TelemetryConfig::parse(Some("0ns")), None);
        assert_eq!(TelemetryConfig::parse(Some("5s")), None);
        assert_eq!(TelemetryConfig::parse(Some("nonsense")), None);
    }
}
