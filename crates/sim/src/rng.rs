//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible across runs and across
//! dependency upgrades, so it uses a hand-rolled [SplitMix64] generator
//! instead of an external crate whose stream might change between versions.
//! SplitMix64 passes BigCrush, is trivially seedable, and one instance per
//! simulation keeps all randomness on a single deterministic stream.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// A deterministic SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method for unbiased bounded
        // integers.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Forks an independent child generator, advancing this one.
    ///
    /// Useful for giving a subsystem its own stream while keeping the whole
    /// simulation on one seed.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SimRng::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_bound_panics() {
        SimRng::new(0).gen_range(0);
    }
}
