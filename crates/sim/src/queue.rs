//! The event scheduler: a hierarchical timing wheel with a heap fallback.
//!
//! Discrete-event workloads in this simulator are dominated by short
//! delays — queueing a message one fabric hop ahead, charging a few
//! microseconds of handler cost — with a thin tail of far-future timers
//! (ack timeouts, watchdog ticks, cleanup). A [`BinaryHeap`] pays
//! `O(log n)` per operation on *every* event; a calendar queue pays `O(1)`
//! amortized for the near-future bulk and only falls back to a heap for
//! the tail.
//!
//! [`EventQueue`] keeps a rotating wheel of `SLOTS` buckets, each
//! spanning 2^`SHIFT` virtual nanoseconds (≈ 4 µs), so the wheel covers
//! about one millisecond of virtual time ahead of the cursor. Events
//! beyond the window land in an overflow min-heap and migrate into the
//! wheel as the cursor advances. Each bucket is itself a tiny binary heap,
//! so ties inside a bucket resolve exactly like the global heap did.
//!
//! The contract that matters is *exact order preservation*: `pop` returns
//! entries in strictly ascending `(time, seq)` order — byte-for-byte the
//! same order a `BinaryHeap` reference model produces — so swapping the
//! scheduler cannot perturb a single trace. A property test
//! (`tests/queue_model.rs`, `proptests` feature) pins this against random
//! interleavings of pushes and pops.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// Log2 of the bucket width in nanoseconds (4096 ns ≈ one short RPC).
const SHIFT: u32 = 12;

/// Number of wheel buckets; the wheel spans `SLOTS << SHIFT` ≈ 1 ms.
const SLOTS: usize = 256;

/// Words of the occupancy bitmask.
const WORDS: usize = SLOTS / 64;

/// One scheduled entry. Ordering ignores the item: `(time, seq)` is the
/// total order (sequence numbers are unique per queue), inverted so that
/// `BinaryHeap` — a max-heap — pops the earliest entry first.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue: timing wheel for the near future, heap for
/// the far future.
///
/// `pop` yields entries in ascending `(time, seq)` order, identically to a
/// `BinaryHeap` over the same keys. Pushes at instants at or before the
/// cursor (possible when an external caller enqueues "now") are accepted
/// and ordered correctly.
pub struct EventQueue<T> {
    /// Near-future buckets; bucket `abs % SLOTS` holds entries whose
    /// absolute bucket index (`time >> SHIFT`) is `abs`, for `abs` in
    /// `[cursor, cursor + SLOTS)`.
    wheel: Vec<BinaryHeap<Entry<T>>>,
    /// One bit per non-empty bucket, for fast first-occupied scans.
    occupied: [u64; WORDS],
    /// Absolute bucket index of the wheel cursor. Only moves forward.
    cursor: u64,
    /// Entries past the wheel window, ordered min-first.
    far: BinaryHeap<Entry<T>>,
    /// Entries currently in the wheel.
    wheel_len: usize,
    /// Total entries.
    len: usize,
}

impl<T> EventQueue<T> {
    /// An empty queue with the cursor at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..SLOTS).map(|_| BinaryHeap::new()).collect(),
            occupied: [0; WORDS],
            cursor: 0,
            far: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently inside the wheel window (engine self-profiling).
    pub fn wheel_len(&self) -> usize {
        self.wheel_len
    }

    /// Entries in the far-future overflow heap (engine self-profiling —
    /// a persistently large heap means the wheel window is mis-sized for
    /// the workload's delay distribution).
    pub fn far_len(&self) -> usize {
        self.far.len()
    }

    /// Number of occupied wheel buckets (engine self-profiling — bucket
    /// occupancy versus `wheel_len` shows how clustered near-future
    /// events are).
    pub fn wheel_occupied_buckets(&self) -> usize {
        self.occupied.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Schedules `item` at `(time, seq)`. Sequence numbers must be unique
    /// for the order to be total; the engines guarantee this by assigning
    /// them from a monotone counter.
    // analyze: hot-path
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        let entry = Entry { time, seq, item };
        // Entries at or before the cursor clamp into the cursor bucket;
        // the per-bucket heap still orders them by true (time, seq).
        let abs = (time.as_nanos() >> SHIFT).max(self.cursor);
        if abs - self.cursor < SLOTS as u64 {
            self.wheel_insert(abs, entry);
        } else {
            self.far.push(entry);
        }
        self.len += 1;
    }

    /// The `(time, seq)` key of the earliest entry, without removing it.
    // analyze: hot-path
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Wheel empty: the overflow heap's minimum is the global
            // minimum (all far entries lie past the wheel window).
            return self.far.peek().map(|e| (e.time, e.seq));
        }
        let off = self.first_occupied().expect("wheel_len > 0");
        let slot = ((self.cursor + off as u64) % SLOTS as u64) as usize;
        self.wheel[slot].peek().map(|e| (e.time, e.seq))
    }

    /// Removes and returns the earliest entry as `(time, seq, item)`.
    // analyze: hot-path
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Rotate the window to the earliest far entry and migrate
            // everything that now fits.
            let min = self.far.peek().expect("len > 0 with empty wheel");
            self.cursor = min.time.as_nanos() >> SHIFT;
            self.refill();
        }
        let off = self.first_occupied().expect("wheel refilled");
        if off > 0 {
            // The window slid forward: far entries may now fit into the
            // vacated span; migrate them before popping so the wheel/far
            // partition invariant (far strictly past the window) holds.
            self.cursor += off as u64;
            self.refill();
        }
        let slot = (self.cursor % SLOTS as u64) as usize;
        let entry = self.wheel[slot].pop().expect("occupied bucket");
        if self.wheel[slot].is_empty() {
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.wheel_len -= 1;
        self.len -= 1;
        Some((entry.time, entry.seq, entry.item))
    }

    fn wheel_insert(&mut self, abs: u64, entry: Entry<T>) {
        debug_assert!(abs >= self.cursor && abs - self.cursor < SLOTS as u64);
        let slot = (abs % SLOTS as u64) as usize;
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
        self.wheel[slot].push(entry);
        self.wheel_len += 1;
    }

    /// Migrates far-heap entries that fall inside the current window.
    fn refill(&mut self) {
        let end = self.cursor + SLOTS as u64;
        while let Some(head) = self.far.peek() {
            if head.time.as_nanos() >> SHIFT >= end {
                break;
            }
            let entry = self.far.pop().expect("peeked entry");
            let abs = (entry.time.as_nanos() >> SHIFT).max(self.cursor);
            self.wheel_insert(abs, entry);
        }
    }

    /// Offset (in buckets, from the cursor) of the first occupied bucket.
    ///
    /// Because every wheel entry lies within one window, circular slot
    /// order starting at the cursor equals absolute time order.
    fn first_occupied(&self) -> Option<usize> {
        let start = (self.cursor % SLOTS as u64) as usize;
        if let Some(slot) = self.scan_range(start, SLOTS) {
            return Some(slot - start);
        }
        if let Some(slot) = self.scan_range(0, start) {
            return Some(slot + SLOTS - start);
        }
        None
    }

    /// First occupied slot in `[lo, hi)`, scanning the bitmask word-wise.
    fn scan_range(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let first_word = lo / 64;
        let last_word = hi.div_ceil(64);
        for w in first_word..last_word {
            let mut word = self.occupied[w];
            if w == first_word {
                word &= !0u64 << (lo % 64);
            }
            let word_end = (w + 1) * 64;
            if word_end > hi {
                word &= !0u64 >> (word_end - hi);
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("wheel_len", &self.wheel_len)
            .field("far_len", &self.far.len())
            .field("cursor", &(self.cursor << SHIFT))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a plain max-heap over inverted `(time, seq)`.
    struct Model(BinaryHeap<Entry<u64>>);

    impl Model {
        fn new() -> Self {
            Model(BinaryHeap::new())
        }
        fn push(&mut self, time: SimTime, seq: u64) {
            self.0.push(Entry {
                time,
                seq,
                item: seq,
            });
        }
        fn pop(&mut self) -> Option<(SimTime, u64)> {
            self.0.pop().map(|e| (e.time, e.seq))
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(500), 2, "b");
        q.push(SimTime::from_nanos(500), 1, "a");
        q.push(SimTime::from_nanos(100), 3, "c");
        assert_eq!(q.peek_key(), Some((SimTime::from_nanos(100), 3)));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("c"));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("a"));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("b"));
        assert_eq!(q.pop().map(|(_, _, i)| i), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_entries_round_trip_through_the_overflow_heap() {
        let mut q = EventQueue::new();
        // Well past the ~1 ms wheel window, plus one near entry.
        q.push(SimTime::from_nanos(3_600_000_000_000), 1, 1u32);
        q.push(SimTime::from_nanos(10_000_000), 2, 2u32);
        q.push(SimTime::from_nanos(50), 3, 3u32);
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(3));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(2));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_at_or_before_the_cursor_still_orders_correctly() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100_000), 1, 1u32);
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(1));
        // Cursor is now at ~100 µs; a push at 0 must not be lost or
        // reordered against a later same-window push.
        q.push(SimTime::from_nanos(0), 2, 2u32);
        q.push(SimTime::from_nanos(100_001), 3, 3u32);
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(2));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(3));
    }

    #[test]
    fn window_slide_migrates_far_entries_before_they_are_due() {
        let mut q = EventQueue::new();
        let w = (SLOTS as u64) << SHIFT; // window span in ns
                                         // One near entry, one just past the initial window, one far past.
        q.push(SimTime::from_nanos(10), 1, 1u32);
        q.push(SimTime::from_nanos(w + 5), 2, 2u32);
        q.push(SimTime::from_nanos(3 * w), 3, 3u32);
        // A later near push that lands between the first two.
        q.push(SimTime::from_nanos(w - 1), 4, 4u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, i)| i)).collect();
        assert_eq!(order, vec![1, 4, 2, 3]);
    }

    #[test]
    fn matches_binary_heap_model_on_a_pseudorandom_sequence() {
        // Deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut q = EventQueue::new();
        let mut m = Model::new();
        let mut seq = 0u64;
        let mut watermark = 0u64; // engines never push below `now`
        for _ in 0..5_000 {
            if next() % 3 != 0 || q.is_empty() {
                // Mix of near, far, and very far delays.
                let delay = match next() % 4 {
                    0 => next() % 1_000,
                    1 => next() % 100_000,
                    2 => next() % 10_000_000,
                    _ => next() % 10_000_000_000,
                };
                let t = SimTime::from_nanos(watermark + delay);
                q.push(t, seq, seq);
                m.push(t, seq);
                seq += 1;
            } else {
                let got = q.pop().map(|(t, s, _)| (t, s));
                let want = m.pop();
                assert_eq!(got, want);
                if let Some((t, _)) = got {
                    watermark = t.as_nanos();
                }
            }
        }
        while let Some(want) = m.pop() {
            let got = q.pop().map(|(t, s, _)| (t, s));
            assert_eq!(got, Some(want));
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn profiling_accessors_track_the_partition() {
        let mut q = EventQueue::new();
        assert_eq!(q.wheel_len() + q.far_len(), 0);
        assert_eq!(q.wheel_occupied_buckets(), 0);
        q.push(SimTime::from_nanos(10), 1, 1u32); // near: wheel
        q.push(SimTime::from_nanos(20), 2, 2u32); // same bucket
        q.push(SimTime::from_nanos(3_600_000_000_000), 3, 3u32); // far heap
        assert_eq!(q.wheel_len(), 2);
        assert_eq!(q.far_len(), 1);
        assert_eq!(q.wheel_occupied_buckets(), 1);
        assert_eq!(q.len(), q.wheel_len() + q.far_len());
    }

    #[test]
    fn len_and_peek_track_mixed_operations() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        for i in 0..100u64 {
            q.push(SimTime::from_nanos(i * 7_919), i, i);
        }
        assert_eq!(q.len(), 100);
        for expect in 0..100u64 {
            assert_eq!(q.peek_key().map(|(_, s)| s), Some(expect));
            q.pop();
        }
        assert_eq!(q.len(), 0);
    }
}
