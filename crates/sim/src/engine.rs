//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns a set of [`Actor`]s and a time-ordered event queue. Each
//! event is a dynamically typed message addressed to one actor; handling an
//! event may enqueue further events through the [`Ctx`] handle. Events at
//! equal timestamps are delivered in insertion order (FIFO), which together
//! with the seeded RNG makes whole runs bit-for-bit deterministic.
//!
//! Messages are `Box<dyn Any>` so that independent crates (network, OS layer,
//! devices) can define their own message types without a shared enum; actors
//! downcast to the types they expect and treat a mismatch as a wiring bug.

use std::any::Any;
use std::fmt;

use crate::metrics::Metrics;
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::span::{sort_canonical, SpanKind, SpanRecord, SpanStore, TraceCtx};
use crate::telemetry::{
    sort_canonical_telemetry, TelemetryEvent, TelemetryKind, TelemetryStore, TELEMETRY_EXTERNAL,
};
use crate::time::{SimDuration, SimTime};

/// Identifies an actor registered with a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub(crate) u32);

impl ActorId {
    /// Returns the raw index of this actor.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// Only meaningful for ids that came from [`Sim::add_actor`] (or in
    /// tests that wire ids by hand); posting to a fabricated id panics.
    pub const fn from_raw(index: u32) -> Self {
        ActorId(index)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A dynamically typed simulation message.
///
/// `Send` so the sharded backend can move cross-node messages between
/// worker threads; plain-data payloads satisfy it automatically.
pub type Msg = Box<dyn Any + Send>;

/// An entity that handles timestamped messages.
///
/// The `Any` supertrait allows harnesses to inspect concrete actor state
/// after a run via [`Sim::with_actor`]. `Send` lets runtime backends host
/// actors on worker threads.
pub trait Actor: Any + Send {
    /// Handles one message delivered at `ctx.now()`.
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>);
}

/// Handle given to actors while they process a message.
///
/// Lets the actor read the clock, send messages, record metrics, and draw
/// deterministic randomness. Sends are buffered and enqueued when the handler
/// returns, preserving FIFO order of same-time messages.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ActorId,
    outbox: &'a mut Vec<(SimTime, ActorId, Msg)>,
    rng: &'a mut SimRng,
    metrics: &'a mut Metrics,
    trace: &'a mut Option<Vec<TraceEntry>>,
    spans: &'a mut Option<SpanStore>,
    telemetry: &'a mut Option<TelemetryStore>,
    stop: &'a mut bool,
}

impl<'a> Ctx<'a> {
    /// Assembles a context for one event delivery (runtime backends only).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        now: SimTime,
        self_id: ActorId,
        outbox: &'a mut Vec<(SimTime, ActorId, Msg)>,
        rng: &'a mut SimRng,
        metrics: &'a mut Metrics,
        trace: &'a mut Option<Vec<TraceEntry>>,
        spans: &'a mut Option<SpanStore>,
        telemetry: &'a mut Option<TelemetryStore>,
        stop: &'a mut bool,
    ) -> Self {
        Ctx {
            now,
            self_id,
            outbox,
            rng,
            metrics,
            trace,
            spans,
            telemetry,
            stop,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The actor currently handling the message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `msg` to `dst` after `delay`.
    ///
    /// Saturating arithmetic: a delay that would leave the `u64` nanosecond
    /// timeline pins at the far-future instant (the message never fires)
    /// instead of panicking, matching the checked conventions of the rest
    /// of the stack.
    pub fn send_after(&mut self, delay: SimDuration, dst: ActorId, msg: impl Any + Send) {
        self.outbox
            .push((self.now.saturating_add(delay), dst, Box::new(msg)));
    }

    /// Sends a pre-boxed message to `dst` after `delay` (saturating, like
    /// [`send_after`](Ctx::send_after)).
    pub fn send_boxed_after(&mut self, delay: SimDuration, dst: ActorId, msg: Msg) {
        self.outbox.push((self.now.saturating_add(delay), dst, msg));
    }

    /// Sends `msg` to `dst` at the current instant (delivered after all
    /// already-queued same-time events).
    pub fn send_now(&mut self, dst: ActorId, msg: impl Any + Send) {
        self.send_after(SimDuration::ZERO, dst, msg);
    }

    /// Schedules a message back to the current actor after `delay`.
    pub fn schedule_self(&mut self, delay: SimDuration, msg: impl Any + Send) {
        let id = self.self_id;
        self.send_after(delay, id, msg);
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The simulation's metric registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Records a trace point if tracing is enabled.
    pub fn trace(&mut self, label: impl Into<String>) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceEntry {
                time: self.now,
                actor: self.self_id,
                label: label.into(),
            });
        }
    }

    /// Whether causal span recording is enabled.
    ///
    /// Callers that need a formatted label should gate the `format!` behind
    /// this so disabled runs allocate nothing.
    pub fn spans_enabled(&self) -> bool {
        self.spans.is_some()
    }

    /// Records a causal span if span recording is enabled, returning the
    /// context that makes further spans its children.
    ///
    /// Recording consumes no simulation RNG draws and is a no-op returning
    /// [`TraceCtx::NONE`] when disabled. When `parent` is
    /// [`TraceCtx::NONE`] the span roots a new trace.
    pub fn span(
        &mut self,
        kind: SpanKind,
        label: &str,
        parent: TraceCtx,
        start: SimTime,
        end: SimTime,
    ) -> TraceCtx {
        match self.spans.as_mut() {
            Some(store) => store.record(self.self_id, kind, label.to_string(), parent, start, end),
            None => TraceCtx::NONE,
        }
    }

    /// Whether telemetry recording is enabled.
    ///
    /// Callers that need a formatted series name should gate the
    /// `format!` behind this so disabled runs allocate nothing.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Records a telemetry counter delta if telemetry is enabled.
    ///
    /// Like span recording, this consumes no RNG draws and is a complete
    /// no-op while the plane is disabled.
    pub fn telemetry_count(&mut self, series: &str, delta: u64) {
        let (now, actor) = (self.now, self.self_id);
        if let Some(store) = self.telemetry.as_mut() {
            store.record(actor, now, series.to_string(), TelemetryKind::Count(delta));
        }
    }

    /// Records a telemetry gauge level if telemetry is enabled. Gauge
    /// series must be single-writer (one actor per series name) for
    /// cross-backend determinism — see [`crate::telemetry`].
    pub fn telemetry_gauge(&mut self, series: &str, value: u64) {
        let (now, actor) = (self.now, self.self_id);
        if let Some(store) = self.telemetry.as_mut() {
            store.record(actor, now, series.to_string(), TelemetryKind::Gauge(value));
        }
    }

    /// Records one telemetry sample (latency, size) if telemetry is
    /// enabled.
    pub fn telemetry_sample(&mut self, series: &str, value: u64) {
        let (now, actor) = (self.now, self.self_id);
        if let Some(store) = self.telemetry.as_mut() {
            store.record(actor, now, series.to_string(), TelemetryKind::Sample(value));
        }
    }

    /// Requests the simulation to stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// One recorded trace point (used by determinism tests and debugging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the trace point.
    pub time: SimTime,
    /// Actor that recorded it.
    pub actor: ActorId,
    /// Free-form label.
    pub label: String,
}

impl fmt::Display for TraceEntry {
    /// Stable `time actor label` rendering, e.g. `12.340us actor#3 deliver`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.time, self.actor, self.label)
    }
}

/// A node-down window for the engine-level crash hook
/// (`Runtime::set_node_outages`): while a node is down, events addressed
/// to its actors are discarded at delivery time — the in-flight messages
/// of a crashed node are lost, identically on both backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutage {
    /// The simulated node that crashes.
    pub node: usize,
    /// Crash instant.
    pub down: SimTime,
    /// Restart instant; `None` means the node never comes back.
    pub up: Option<SimTime>,
}

impl NodeOutage {
    /// True when a delivery at `t` must be discarded. The window is the
    /// open interval `(down, up)`: an event at exactly `down` (the kill
    /// notification itself) or exactly `up` (the reboot) is still
    /// delivered, so the crash and restart hooks fire on the node's own
    /// actors deterministically.
    pub fn drops_at(&self, t: SimTime) -> bool {
        t > self.down && self.up.is_none_or(|u| t < u)
    }
}

/// Outcome of driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time or step limit was reached with events still pending.
    LimitReached,
    /// An actor requested a stop via [`Ctx::stop`].
    Stopped,
}

/// The discrete-event simulator.
pub struct Sim {
    actors: Vec<Option<Box<dyn Actor>>>,
    names: Vec<String>,
    /// Simulated node of each actor (parallel to `actors`). The single
    /// global queue ignores placement for scheduling; it only scopes
    /// node-outage windows.
    nodes: Vec<u32>,
    /// Node-down windows (crash faults); empty on fault-free runs.
    outages: Vec<NodeOutage>,
    queue: EventQueue<(ActorId, Msg)>,
    now: SimTime,
    seq: u64,
    steps: u64,
    seed: u64,
    rng: SimRng,
    metrics: Metrics,
    trace: Option<Vec<TraceEntry>>,
    spans: Option<SpanStore>,
    telemetry: Option<TelemetryStore>,
    /// Sampling period for engine self-profiling boundary ticks; `Some`
    /// exactly when `telemetry` is.
    telemetry_period: Option<SimDuration>,
    /// Last self-profiling window emitted (window index = time / period).
    tele_window: Option<u64>,
    /// `steps` at the last self-profiling emission (events/window deltas).
    tele_steps: u64,
    /// Reusable send buffer for [`step`](Sim::step): drained back to empty
    /// after every event so the per-event cost is a pointer swap, not a
    /// heap allocation.
    scratch_outbox: Vec<(SimTime, ActorId, Msg)>,
    stop: bool,
}

impl Sim {
    /// Creates an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            actors: Vec::new(),
            names: Vec::new(),
            nodes: Vec::new(),
            outages: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            seq: 0,
            steps: 0,
            seed,
            rng: SimRng::new(seed),
            metrics: Metrics::new(),
            trace: None,
            spans: None,
            telemetry: None,
            telemetry_period: None,
            tele_window: None,
            tele_steps: 0,
            scratch_outbox: Vec::new(),
            stop: false,
        }
    }

    /// Enables trace recording (see [`Sim::take_trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Takes the recorded trace, leaving recording enabled.
    ///
    /// Entries are returned sorted by `(time, actor, label)` — the canonical
    /// order shared by every runtime backend, so equal workloads at equal
    /// seeds yield equal traces regardless of the engine that ran them.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        let mut entries = self.trace.replace(Vec::new()).unwrap_or_default();
        entries.sort_by(|a, b| (a.time, a.actor, &a.label).cmp(&(b.time, b.actor, &b.label)));
        entries
    }

    /// Enables causal span recording (see [`Sim::take_spans`]).
    pub fn enable_spans(&mut self) {
        if self.spans.is_none() {
            self.spans = Some(SpanStore::new(self.seed));
        }
    }

    /// Takes the recorded spans in canonical `(start, end, actor, ord)`
    /// order, leaving recording enabled.
    pub fn take_spans(&mut self) -> Vec<SpanRecord> {
        let mut spans = match self.spans.as_mut() {
            Some(store) => store.take(),
            None => Vec::new(),
        };
        sort_canonical(&mut spans);
        spans
    }

    /// Enables telemetry recording with the given sampling period (see
    /// [`Sim::take_telemetry`]). Off by default; while disabled, recording
    /// is a no-op that neither allocates nor perturbs the RNG stream, so
    /// disabled runs behave bit-identically to builds without the
    /// subsystem.
    pub fn enable_telemetry(&mut self, period: SimDuration) {
        assert!(period > SimDuration::ZERO, "telemetry period must be > 0");
        if self.telemetry.is_none() {
            self.telemetry = Some(TelemetryStore::new());
        }
        self.telemetry_period = Some(period);
    }

    /// The telemetry sampling period, or `None` while the plane is off.
    pub fn telemetry_period(&self) -> Option<SimDuration> {
        self.telemetry_period
    }

    /// Takes the recorded telemetry events in the canonical
    /// `(time, series, actor, ord)` order, leaving recording enabled.
    pub fn take_telemetry(&mut self) -> Vec<TelemetryEvent> {
        let mut events = match self.telemetry.as_mut() {
            Some(store) => store.take(),
            None => Vec::new(),
        };
        sort_canonical_telemetry(&mut events);
        events
    }

    /// Engine self-profiling: when an event crosses a sampling-period
    /// boundary, record scheduler gauges (queue depth, timing-wheel
    /// bucket occupancy, overflow-heap size) and the events-per-window
    /// delta under the backend-specific `runtime.` series namespace.
    /// Exporters exclude that namespace from cross-backend artifacts.
    fn telemetry_boundary(&mut self, time: SimTime) {
        let Some(period) = self.telemetry_period else {
            return;
        };
        let w = time.as_nanos() / period.as_nanos().max(1);
        if self.tele_window == Some(w) {
            return;
        }
        self.tele_window = Some(w);
        let at = SimTime::from_nanos(w.saturating_mul(period.as_nanos()));
        let depth = self.queue.len() as u64;
        let occupied = self.queue.wheel_occupied_buckets() as u64;
        let far = self.queue.far_len() as u64;
        let events = self.steps - self.tele_steps;
        self.tele_steps = self.steps;
        // `telemetry_period` is only ever set together with the store.
        let Some(store) = self.telemetry.as_mut() else {
            return;
        };
        let mut emit = |series: &str, kind: TelemetryKind| {
            store.record(TELEMETRY_EXTERNAL, at, series.to_string(), kind);
        };
        emit("runtime.single.queue.depth", TelemetryKind::Gauge(depth));
        emit(
            "runtime.single.wheel.occupied",
            TelemetryKind::Gauge(occupied),
        );
        emit("runtime.single.wheel.far", TelemetryKind::Gauge(far));
        emit("runtime.single.events", TelemetryKind::Count(events));
        // Sampled scheduler peaks for the post-run profile table.
        for (name, v) in [
            ("runtime.single.wheel.occupied_peak", occupied),
            ("runtime.single.wheel.far_peak", far),
            ("runtime.single.queue.depth_peak", depth),
        ] {
            let prev = self.metrics.counter(name);
            if v > prev {
                self.metrics.add(name, v - prev);
            }
        }
    }

    /// Registers an actor (on node 0) and returns its id.
    pub fn add_actor(&mut self, name: impl Into<String>, actor: Box<dyn Actor>) -> ActorId {
        self.add_actor_on(0, name, actor)
    }

    /// Registers an actor on a simulated node. Placement has no effect on
    /// scheduling (one global queue); it scopes node-outage windows.
    pub fn add_actor_on(
        &mut self,
        node: usize,
        name: impl Into<String>,
        actor: Box<dyn Actor>,
    ) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        self.actors.push(Some(actor));
        self.names.push(name.into());
        self.nodes
            .push(u32::try_from(node).expect("node out of range"));
        id
    }

    /// Installs node-down windows (crash faults). Deliveries to actors on
    /// a down node are discarded — see [`NodeOutage::drops_at`]. An empty
    /// list (the default) leaves the engine bit-identical to builds
    /// without the hook.
    pub fn set_node_outages(&mut self, outages: Vec<NodeOutage>) {
        self.outages = outages;
    }

    /// Returns the registered name of an actor.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The metric registry (read results after a run).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metric registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Enqueues a message to `dst` at `now + delay` from outside any actor.
    pub fn post(&mut self, delay: SimDuration, dst: ActorId, msg: impl Any + Send) {
        self.post_boxed(delay, dst, Box::new(msg));
    }

    /// Enqueues a pre-boxed message (saturating at the end of the virtual
    /// timeline, like [`Ctx::send_after`]).
    pub fn post_boxed(&mut self, delay: SimDuration, dst: ActorId, msg: Msg) {
        assert!(
            dst.index() < self.actors.len(),
            "post to unregistered {dst}"
        );
        let time = self.now.saturating_add(delay);
        self.queue.push(time, self.seq, (dst, msg));
        self.seq += 1;
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses an actor slot that was never registered
    /// (a wiring bug) or re-enters an actor currently on the stack (actors
    /// never send to themselves synchronously by construction).
    // analyze: hot-path
    pub fn step(&mut self) -> bool {
        let Some((time, _seq, (dst, msg))) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue went back in time");
        self.now = time;
        self.steps += 1;
        if self.telemetry_period.is_some() {
            self.telemetry_boundary(time);
        }

        // A delivery inside a node-down window is lost: the crashed node's
        // actors stop receiving. The event still advances time and counts
        // as a step (progress), it just never reaches a handler.
        if !self.outages.is_empty() {
            let node = self.nodes[dst.index()] as usize;
            if self
                .outages
                .iter()
                .any(|o| o.node == node && o.drops_at(time))
            {
                self.metrics.incr("engine.outage_drops");
                return true;
            }
        }

        // Temporarily take the actor out of its slot so the context can
        // borrow the rest of the simulation mutably.
        let mut actor = self.actors[dst.index()]
            .take()
            .unwrap_or_else(|| panic!("re-entrant or missing {dst}"));
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: dst,
                outbox: &mut outbox,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                spans: &mut self.spans,
                telemetry: &mut self.telemetry,
                stop: &mut self.stop,
            };
            actor.handle(msg, &mut ctx);
        }
        self.actors[dst.index()] = Some(actor);
        for (time, dst, msg) in outbox.drain(..) {
            assert!(
                dst.index() < self.actors.len(),
                "send to unregistered {dst}"
            );
            self.queue.push(time, self.seq, (dst, msg));
            self.seq += 1;
        }
        self.scratch_outbox = outbox;
        true
    }

    /// Runs until the queue drains, a step limit is hit, or an actor stops
    /// the simulation.
    pub fn run(&mut self) -> RunOutcome {
        self.run_with_limit(u64::MAX)
    }

    /// Runs for at most `max_steps` events.
    pub fn run_with_limit(&mut self, max_steps: u64) -> RunOutcome {
        self.stop = false;
        for _ in 0..max_steps {
            if self.stop {
                return RunOutcome::Stopped;
            }
            if !self.step() {
                return RunOutcome::Drained;
            }
        }
        if self.queue.is_empty() {
            RunOutcome::Drained
        } else {
            RunOutcome::LimitReached
        }
    }

    /// Runs until virtual time exceeds `deadline` or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.stop = false;
        loop {
            if self.stop {
                return RunOutcome::Stopped;
            }
            match self.queue.peek_key() {
                None => return RunOutcome::Drained,
                Some((time, _)) if time > deadline => return RunOutcome::LimitReached,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Gives temporary mutable access to a registered actor between events.
    ///
    /// Useful for tests and harnesses that inspect actor state after a run.
    ///
    /// # Panics
    ///
    /// Panics if the actor is not of type `T`.
    pub fn with_actor<T: Actor + 'static, R>(
        &mut self,
        id: ActorId,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        let actor = self.actors[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("missing {id}"));
        let any: &mut dyn Any = actor.as_mut();
        let t = any
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("actor {id} is not the requested type"));
        f(t)
    }

    /// Invokes `f` with the actor's `dyn Any` form (object-safe counterpart
    /// of [`Sim::with_actor`], used by the [`Runtime`](crate::Runtime)
    /// impl).
    pub fn with_actor_any(&mut self, id: ActorId, f: &mut dyn FnMut(&mut dyn Any)) {
        let actor = self.actors[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("missing {id}"));
        f(actor.as_mut());
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .field("pending", &self.queue.len())
            .field("steps", &self.steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        received: Vec<(SimTime, u32)>,
        reply_to: Option<ActorId>,
    }

    impl Actor for Echo {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let v = *msg.downcast::<u32>().expect("expected u32");
            self.received.push((ctx.now(), v));
            if let Some(dst) = self.reply_to {
                if v > 0 {
                    ctx.send_after(SimDuration::from_micros(1), dst, v - 1);
                }
            }
        }
    }

    #[test]
    fn fifo_order_at_equal_time() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor(
            "a",
            Box::new(Echo {
                received: vec![],
                reply_to: None,
            }),
        );
        sim.post(SimDuration::ZERO, a, 1u32);
        sim.post(SimDuration::ZERO, a, 2u32);
        sim.post(SimDuration::ZERO, a, 3u32);
        assert_eq!(sim.run(), RunOutcome::Drained);
        sim.with_actor::<Echo, _>(a, |e| {
            let vals: Vec<u32> = e.received.iter().map(|(_, v)| *v).collect();
            assert_eq!(vals, vec![1, 2, 3]);
        });
    }

    #[test]
    fn time_ordering() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor(
            "a",
            Box::new(Echo {
                received: vec![],
                reply_to: None,
            }),
        );
        sim.post(SimDuration::from_micros(5), a, 5u32);
        sim.post(SimDuration::from_micros(1), a, 1u32);
        sim.post(SimDuration::from_micros(3), a, 3u32);
        sim.run();
        sim.with_actor::<Echo, _>(a, |e| {
            let vals: Vec<u32> = e.received.iter().map(|(_, v)| *v).collect();
            assert_eq!(vals, vec![1, 3, 5]);
        });
        assert_eq!(sim.now(), SimTime::from_nanos(5_000));
    }

    #[test]
    fn ping_pong_until_drained() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor(
            "a",
            Box::new(Echo {
                received: vec![],
                reply_to: None,
            }),
        );
        // Wire b to reply to a and a to reply to b.
        let b = sim.add_actor(
            "b",
            Box::new(Echo {
                received: vec![],
                reply_to: Some(a),
            }),
        );
        sim.with_actor::<Echo, _>(a, |e| e.reply_to = Some(b));
        sim.post(SimDuration::ZERO, a, 10u32);
        assert_eq!(sim.run(), RunOutcome::Drained);
        // 10 decrements → 11 total deliveries, 1 µs apart.
        assert_eq!(sim.steps(), 11);
        assert_eq!(sim.now(), SimTime::from_nanos(10_000));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor(
            "a",
            Box::new(Echo {
                received: vec![],
                reply_to: None,
            }),
        );
        sim.post(SimDuration::from_micros(1), a, 1u32);
        sim.post(SimDuration::from_micros(100), a, 2u32);
        assert_eq!(
            sim.run_until(SimTime::from_nanos(50_000)),
            RunOutcome::LimitReached
        );
        assert_eq!(sim.pending(), 1);
    }

    struct Stopper;
    impl Actor for Stopper {
        fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
            ctx.stop();
        }
    }

    #[test]
    fn actor_can_stop_simulation() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor("stop", Box::new(Stopper));
        sim.post(SimDuration::ZERO, a, 0u32);
        sim.post(SimDuration::from_micros(1), a, 0u32);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn trace_records_labels() {
        struct Tracer;
        impl Actor for Tracer {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                ctx.trace("hit");
            }
        }
        let mut sim = Sim::new(0);
        sim.enable_trace();
        let a = sim.add_actor("t", Box::new(Tracer));
        sim.post(SimDuration::from_micros(2), a, 0u32);
        sim.run();
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].label, "hit");
        assert_eq!(trace[0].time, SimTime::from_nanos(2_000));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn post_to_unknown_actor_panics() {
        let mut sim = Sim::new(0);
        sim.post(SimDuration::ZERO, ActorId(7), 0u32);
    }

    #[test]
    fn node_outage_window_is_open_at_both_ends() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor_on(
            1,
            "a",
            Box::new(Echo {
                received: vec![],
                reply_to: None,
            }),
        );
        sim.set_node_outages(vec![NodeOutage {
            node: 1,
            down: SimTime::from_nanos(10_000),
            up: Some(SimTime::from_nanos(20_000)),
        }]);
        sim.post(SimDuration::from_micros(10), a, 1u32); // exactly `down`: delivered
        sim.post(SimDuration::from_micros(15), a, 2u32); // interior: dropped
        sim.post(SimDuration::from_micros(20), a, 3u32); // exactly `up`: delivered
        sim.post(SimDuration::from_micros(25), a, 4u32);
        assert_eq!(sim.run(), RunOutcome::Drained);
        sim.with_actor::<Echo, _>(a, |e| {
            let vals: Vec<u32> = e.received.iter().map(|(_, v)| *v).collect();
            assert_eq!(vals, vec![1, 3, 4]);
        });
        // The dropped event still advanced time and counted as a step.
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.metrics().counter("engine.outage_drops"), 1);
    }

    #[test]
    fn node_outage_scopes_to_the_named_node() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor_on(
            0,
            "a",
            Box::new(Echo {
                received: vec![],
                reply_to: None,
            }),
        );
        sim.set_node_outages(vec![NodeOutage {
            node: 2,
            down: SimTime::ZERO,
            up: None,
        }]);
        sim.post(SimDuration::from_micros(5), a, 7u32);
        sim.run();
        sim.with_actor::<Echo, _>(a, |e| assert_eq!(e.received.len(), 1));
        assert_eq!(sim.metrics().counter("engine.outage_drops"), 0);
    }

    #[test]
    fn crash_stop_outage_never_lifts() {
        let mut sim = Sim::new(0);
        let a = sim.add_actor_on(
            1,
            "a",
            Box::new(Echo {
                received: vec![],
                reply_to: None,
            }),
        );
        sim.set_node_outages(vec![NodeOutage {
            node: 1,
            down: SimTime::from_nanos(1_000),
            up: None,
        }]);
        sim.post(SimDuration::from_secs(10), a, 1u32);
        sim.run();
        sim.with_actor::<Echo, _>(a, |e| assert!(e.received.is_empty()));
        assert_eq!(sim.metrics().counter("engine.outage_drops"), 1);
    }
}
