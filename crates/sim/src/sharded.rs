//! Parallel sharded simulation engine.
//!
//! One shard per simulated node, synchronized by *per-link channel
//! lookahead* in the conservative Chandy–Misra–Bryant style. Each ordered
//! shard pair `(j, i)` has a link lookahead `la[j][i]`: a strict lower
//! bound on the delay of any message an actor on shard `j` sends to an
//! actor on shard `i`. The engine runs rounds:
//!
//! 1. At the start of a round every shard `j` publishes `next_j` — the
//!    timestamp of its earliest pending event (a shard with an empty queue
//!    publishes nothing). From these the engine derives each shard's
//!    *channel clock* `ready_j`: a lower bound on when `j` can next
//!    execute **any** event, including ones it has not received yet. An
//!    idle shard's clock is not infinity — a peer can wake it, and it can
//!    then forward the disturbance — so the clocks are the shortest-path
//!    closure `ready_j = min(next_j, min over k ≠ j of ready_k + la[k][j])`
//!    over the lookahead graph.
//! 2. Each shard `i` computes its private horizon
//!    `H_i = min over j ≠ i of (ready_j + la[j][i])` — the earliest
//!    instant at which *any* peer could still affect it, along any causal
//!    chain. A shard nothing can ever reach is unbounded and drains
//!    freely. Shards then process their events with `time < H_i` in
//!    `(time, seq)` order, in parallel on worker threads; intra-shard
//!    sends enqueue locally, cross-shard sends are buffered.
//! 3. At the barrier, buffered messages are exchanged in shard order
//!    (deterministic) and the next round begins.
//!
//! Safety: any message `i` will ever receive — this round or later — is
//! the tail of a causal chain that starts at some pending event at shard
//! `k` and hops `k → … → j → i`; it departs `j` no earlier than `ready_j`
//! (by induction over the closure) and so arrives at
//! `≥ ready_j + la[j][i] ≥ H_i`, never inside the window `i` is
//! concurrently processing — that is the channel-clock invariant.
//! Progress: the globally earliest shard `k` has `ready_k = next_k` (every
//! relaxation path adds positive lookahead to a value `≥ next_k`), hence
//! `H_k ≥ next_k + min la > next_k`, so every round processes at least one
//! event. Unlike a single global `T_min + lookahead` horizon, a shard is
//! bounded only by the links that can actually reach it: far-behind or
//! slow (e.g. cross-rack) links widen its window instead of throttling the
//! whole cluster.
//!
//! The per-link bounds come from the fabric: every inter-node delay is at
//! least the remote one-way latency (minus the jitter floor), plus any
//! cross-rack extra for links between racks — see
//! `NetParams::link_lookahead_matrix` in `fractos-net`, delivered here
//! through [`RuntimeConfig::link_lookahead`]. The engine asserts the bound
//! on every cross-shard message at send time, so a violating workload
//! fails loudly instead of simulating nonsense.
//!
//! Determinism: for a fixed seed, shard layout, and worker count the engine
//! is deterministic — each shard owns a forked RNG stream and processes its
//! events in a total order, and the barrier exchange is ordered by shard
//! index. Event *interleavings across shards* differ from the
//! single-threaded engine, so order-sensitive observables (latency samples,
//! link-schedule reservations) may differ between backends; order-free
//! observables (per-link message/byte counters, end-to-end payloads) match.
//! The cross-backend equivalence suite pins exactly that contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::engine::{Actor, ActorId, Ctx, Msg, NodeOutage, RunOutcome, TraceEntry};
use crate::metrics::Metrics;
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::runtime::{Runtime, RuntimeConfig};
use crate::span::{sort_canonical, SpanRecord, SpanStore};
use crate::telemetry::{
    sort_canonical_telemetry, TelemetryEvent, TelemetryKind, TelemetryStore, TELEMETRY_EXTERNAL,
};
use crate::time::{SimDuration, SimTime};

/// Queued payload: local actor slot, global id (for errors and traces),
/// and the message itself.
type Queued = (u32, ActorId, Msg);

/// Where a global actor lives.
#[derive(Clone, Copy)]
struct Loc {
    shard: u32,
    local: u32,
}

struct Shard {
    queue: EventQueue<Queued>,
    actors: Vec<Option<Box<dyn Actor>>>,
    rng: SimRng,
    metrics: Metrics,
    trace: Option<Vec<TraceEntry>>,
    spans: Option<SpanStore>,
    telemetry: Option<TelemetryStore>,
    /// Self-profiling sampling period; `Some` exactly when `telemetry` is.
    telemetry_period: Option<SimDuration>,
    /// Last self-profiling window this shard emitted.
    tele_window: Option<u64>,
    /// Events processed at the last self-profiling emission.
    tele_steps: u64,
    /// Lifetime events processed by this shard (self-profiling).
    total_processed: u64,
    now: SimTime,
    seq: u64,
    stop: bool,
    /// Node-down windows scoped to this shard's node (crash faults);
    /// empty on fault-free runs.
    outages: Vec<NodeOutage>,
    /// Events processed in the current round.
    processed: u64,
    /// Cross-shard sends buffered until the barrier, as
    /// `(sent_at, arrival, dst, msg)`; the send instant lets the barrier
    /// check each message against its link's lookahead on the main thread
    /// (so a violation panics with a diagnostic instead of a bare
    /// "scoped thread panicked").
    cross: Vec<(SimTime, SimTime, ActorId, Msg)>,
    /// Reusable send buffer for [`run_window`](Shard::run_window): drained
    /// back to empty after every event so the per-event cost is a pointer
    /// swap, not a heap allocation.
    scratch_outbox: Vec<(SimTime, ActorId, Msg)>,
}

impl Shard {
    /// Processes all local events strictly before `horizon` (unbounded when
    /// `None`); returns when the window is exhausted or an actor requested
    /// a stop. Cross-shard sends are buffered with their send instant; the
    /// barrier checks them against the per-link lookahead.
    // analyze: hot-path
    fn run_window(&mut self, horizon: Option<SimTime>, locs: &[Loc], my_index: u32, budget: u64) {
        while self.processed < budget && !self.stop {
            let Some((head_time, _)) = self.queue.peek_key() else {
                break;
            };
            if horizon.is_some_and(|h| head_time >= h) {
                break;
            }
            let (time, _seq, (local, dst, msg)) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(
                time >= self.now,
                "shard queue went back in time: popped {time} < now {now} (queue {q:?})",
                now = self.now,
                q = self.queue,
            );
            self.now = time;
            self.processed += 1;
            self.total_processed += 1;
            if self.telemetry_period.is_some() {
                self.telemetry_boundary(time, my_index);
            }

            // A delivery inside this node's down window is lost (crash
            // fault): same decision rule, same metric as the
            // single-threaded engine, so crash runs replay identically.
            if !self.outages.is_empty() && self.outages.iter().any(|o| o.drops_at(time)) {
                self.metrics.incr("engine.outage_drops");
                continue;
            }

            let mut actor = self.actors[local as usize]
                .take()
                .unwrap_or_else(|| panic!("re-entrant or missing {dst}"));
            let mut outbox = std::mem::take(&mut self.scratch_outbox);
            {
                let mut ctx = Ctx::new(
                    self.now,
                    dst,
                    &mut outbox,
                    &mut self.rng,
                    &mut self.metrics,
                    &mut self.trace,
                    &mut self.spans,
                    &mut self.telemetry,
                    &mut self.stop,
                );
                actor.handle(msg, &mut ctx);
            }
            self.actors[local as usize] = Some(actor);
            for (time, dst, msg) in outbox.drain(..) {
                let loc = locs
                    .get(dst.index())
                    .unwrap_or_else(|| panic!("send to unregistered {dst}"));
                if loc.shard == my_index {
                    self.push(time, *loc, dst, msg);
                } else {
                    self.cross.push((self.now, time, dst, msg));
                }
            }
            self.scratch_outbox = outbox;
        }
    }

    fn push(&mut self, time: SimTime, loc: Loc, dst: ActorId, msg: Msg) {
        self.queue.push(time, self.seq, (loc.local, dst, msg));
        self.seq += 1;
    }

    /// Per-shard counterpart of the single-threaded engine's boundary
    /// sampling: when an event crosses a sampling-period boundary, record
    /// this shard's scheduler gauges and events-per-window delta under
    /// the backend-specific `runtime.shard{i}.` namespace. Exporters
    /// exclude `runtime.` series from cross-backend artifacts.
    fn telemetry_boundary(&mut self, time: SimTime, my_index: u32) {
        let Some(period) = self.telemetry_period else {
            return;
        };
        let w = time.as_nanos() / period.as_nanos().max(1);
        if self.tele_window == Some(w) {
            return;
        }
        self.tele_window = Some(w);
        let at = SimTime::from_nanos(w.saturating_mul(period.as_nanos()));
        let depth = self.queue.len() as u64;
        let occupied = self.queue.wheel_occupied_buckets() as u64;
        let far = self.queue.far_len() as u64;
        let events = self.total_processed - self.tele_steps;
        self.tele_steps = self.total_processed;
        // `telemetry_period` is only ever set together with the store.
        let Some(store) = self.telemetry.as_mut() else {
            return;
        };
        for (suffix, kind) in [
            ("queue.depth", TelemetryKind::Gauge(depth)),
            ("wheel.occupied", TelemetryKind::Gauge(occupied)),
            ("wheel.far", TelemetryKind::Gauge(far)),
            ("events", TelemetryKind::Count(events)),
        ] {
            store.record(
                TELEMETRY_EXTERNAL,
                at,
                format!("runtime.shard{my_index}.{suffix}"),
                kind,
            );
        }
        for (suffix, v) in [
            ("wheel.occupied_peak", occupied),
            ("wheel.far_peak", far),
            ("queue.depth_peak", depth),
        ] {
            let name = format!("runtime.shard{my_index}.{suffix}");
            let prev = self.metrics.counter(&name);
            if v > prev {
                self.metrics.add(&name, v - prev);
            }
        }
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_key().map(|(t, _)| t)
    }
}

/// The parallel sharded simulation engine.
///
/// See the [module docs](self) for the synchronization scheme. Constructed
/// through [`RuntimeConfig`] (usually via
/// [`build_runtime`](crate::runtime::build_runtime)); actors are placed on
/// shards by the `node` argument of
/// [`Runtime::add_actor_on`].
pub struct ShardedSim {
    shards: Vec<Shard>,
    locs: Vec<Loc>,
    names: Vec<String>,
    /// `la[j][i]`: lower bound on the delay of any message from shard `j`
    /// to shard `i`. Diagonal entries are unused.
    la: Vec<Vec<SimDuration>>,
    workers: usize,
    /// Accumulated metrics: per-shard registries merged after every run,
    /// plus anything the harness records between runs.
    metrics: Metrics,
    now: SimTime,
    steps: u64,
    seed: u64,
    trace_enabled: bool,
    spans_enabled: bool,
    /// Telemetry sampling period; `Some` while the plane is enabled.
    telemetry_period: Option<SimDuration>,
}

/// Scheduling hook for the bounded schedule explorer
/// (`crates/sim/tests/schedule_explorer.rs`).
///
/// In explorer mode the engine runs each round's shards *sequentially*,
/// in the order [`pick`](ScheduleProbe::pick) chooses, instead of fanning
/// out over workers — so a test can enumerate every interleaving of a
/// round's shard executions and assert the conservative barrier makes
/// them all equivalent.
pub struct ScheduleProbe<'a> {
    /// Chooses the execution order for one round: receives the round
    /// index and the *active* shards (those whose next event lies inside
    /// their horizon — the only ones that will process events), returns
    /// a permutation of that slice.
    pub pick: &'a mut dyn FnMut(u64, &[usize]) -> Vec<usize>,
    /// Per-round log of the active shard sets, in round order. Identical
    /// across schedules when the barrier is correct; the explorer asserts
    /// it and uses the sizes to bound its enumeration.
    pub log: Vec<Vec<usize>>,
}

impl ShardedSim {
    /// Builds an engine with one shard per node.
    ///
    /// The per-link lookahead matrix comes from
    /// [`RuntimeConfig::link_lookahead`] when present; otherwise every link
    /// uses the uniform [`RuntimeConfig::lookahead`].
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes` is zero, if any link lookahead is zero (a
    /// conservative engine cannot make progress without positive channel
    /// lookahead), or if a provided matrix is not `nodes × nodes`.
    pub fn new(config: &RuntimeConfig) -> Self {
        assert!(config.nodes > 0, "sharded runtime needs at least one node");
        let la = match &config.link_lookahead {
            Some(matrix) => {
                assert!(
                    matrix.len() == config.nodes && matrix.iter().all(|r| r.len() == config.nodes),
                    "link lookahead matrix must be {n}×{n}",
                    n = config.nodes
                );
                matrix.clone()
            }
            None => vec![vec![config.lookahead; config.nodes]; config.nodes],
        };
        for (j, row) in la.iter().enumerate() {
            for (i, &l) in row.iter().enumerate() {
                assert!(
                    i == j || l > SimDuration::ZERO,
                    "sharded runtime needs a positive lookahead window on link {j}→{i}"
                );
            }
        }
        let mut root = SimRng::new(config.seed);
        let shards = (0..config.nodes)
            .map(|_| Shard {
                queue: EventQueue::new(),
                actors: Vec::new(),
                rng: root.fork(),
                metrics: Metrics::new(),
                trace: None,
                spans: None,
                telemetry: None,
                telemetry_period: None,
                tele_window: None,
                tele_steps: 0,
                total_processed: 0,
                now: SimTime::ZERO,
                seq: 0,
                stop: false,
                outages: Vec::new(),
                processed: 0,
                cross: Vec::new(),
                scratch_outbox: Vec::new(),
            })
            .collect::<Vec<_>>();
        let workers = resolve_workers(config, shards.len());
        ShardedSim {
            shards,
            locs: Vec::new(),
            names: Vec::new(),
            la,
            workers,
            metrics: Metrics::new(),
            now: SimTime::ZERO,
            steps: 0,
            seed: config.seed,
            trace_enabled: false,
            spans_enabled: false,
            telemetry_period: None,
        }
    }

    /// Number of worker threads a run will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of shards (= simulated nodes).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn register(&mut self, node: usize, name: &str, actor: Box<dyn Actor>) -> ActorId {
        assert!(
            node < self.shards.len(),
            "node {node} out of range for {} shards",
            self.shards.len()
        );
        let id = ActorId::from_raw(u32::try_from(self.locs.len()).expect("too many actors"));
        let shard = &mut self.shards[node];
        let local = u32::try_from(shard.actors.len()).expect("too many actors on one shard");
        shard.actors.push(Some(actor));
        self.locs.push(Loc {
            shard: node as u32,
            local,
        });
        self.names.push(name.to_string());
        id
    }

    /// Per-shard horizons for one round: shard `i` may process events
    /// strictly before `min over j ≠ i of (ready_j + la[j][i])`, where
    /// `ready_j` is shard `j`'s *channel clock* — a lower bound on when `j`
    /// can next execute **any** event, including ones it has not received
    /// yet. `None` means unbounded — no peer can ever reach the shard.
    ///
    /// An idle shard's clock is not infinity: a peer can wake it, and it
    /// can then forward the disturbance. The clocks are therefore the
    /// shortest-path closure of pending-event times over the lookahead
    /// graph, `ready_j = min(next_j, min over k ≠ j of ready_k + la[k][j])`,
    /// computed by Bellman–Ford relaxation (lookaheads are strictly
    /// positive, so the fixpoint exists and sweeps converge; `n` is the
    /// node count, so the O(n³) worst case is tiny).
    /// Returns each shard's horizon plus the number of Bellman–Ford
    /// relaxation sweeps the closure took — the conservative engine's
    /// analogue of CMB null-message rounds, surfaced as an engine
    /// self-profiling counter when telemetry is on.
    fn horizons(
        &self,
        nexts: &[Option<SimTime>],
        deadline: Option<SimTime>,
    ) -> (Vec<Option<SimTime>>, u64) {
        let n = self.shards.len();
        let mut ready: Vec<Option<SimTime>> = nexts.to_vec();
        let mut sweeps = 0u64;
        for _ in 1..n {
            let mut changed = false;
            sweeps += 1;
            for j in 0..n {
                let Some(rj) = ready[j] else { continue };
                for (i, ri) in ready.iter_mut().enumerate() {
                    if i == j {
                        continue;
                    }
                    let reach = rj.saturating_add(self.la[j][i]);
                    let closer = match *ri {
                        None => true,
                        Some(ri) => reach < ri,
                    };
                    if closer {
                        *ri = Some(reach);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let horizons = (0..n)
            .map(|i| {
                let mut bound: Option<SimTime> = deadline
                    // The horizon is exclusive; an inclusive deadline caps
                    // it one nanosecond past.
                    .map(|d| d.saturating_add(SimDuration::from_nanos(1)));
                for (j, r) in ready.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if let Some(r) = r {
                        let reach = r.saturating_add(self.la[j][i]);
                        bound = Some(bound.map_or(reach, |b| b.min(reach)));
                    }
                }
                bound
            })
            .collect();
        (horizons, sweeps)
    }

    /// Runs the workload to completion with every round's shard order
    /// chosen by `probe` (see [`ScheduleProbe`]); returns the outcome and
    /// the per-round active-shard log.
    ///
    /// Single-threaded by construction: each round executes its shards
    /// back-to-back in the picked order, which is exactly the
    /// interleaving freedom the worker pool has at runtime (cross-shard
    /// messages only move at the barrier either way).
    pub fn run_scheduled(
        &mut self,
        pick: &mut dyn FnMut(u64, &[usize]) -> Vec<usize>,
    ) -> (RunOutcome, Vec<Vec<usize>>) {
        let mut probe = ScheduleProbe {
            pick,
            log: Vec::new(),
        };
        let outcome = self.run_rounds_probed(u64::MAX, None, Some(&mut probe));
        (outcome, probe.log)
    }

    /// Drives synchronization rounds until drained, stopped, out of
    /// budget, or past the deadline.
    fn run_rounds(&mut self, max_steps: u64, deadline: Option<SimTime>) -> RunOutcome {
        self.run_rounds_probed(max_steps, deadline, None)
    }

    /// [`run_rounds`](Self::run_rounds), optionally under a schedule
    /// probe that sequentializes each round in a chosen order.
    fn run_rounds_probed(
        &mut self,
        max_steps: u64,
        deadline: Option<SimTime>,
        mut probe: Option<&mut ScheduleProbe<'_>>,
    ) -> RunOutcome {
        for s in &mut self.shards {
            s.stop = false;
            s.processed = 0;
            if self.trace_enabled && s.trace.is_none() {
                s.trace = Some(Vec::new());
            }
            if self.spans_enabled && s.spans.is_none() {
                // Every shard's store shares the run seed: ids derive from
                // (seed, actor, per-actor counter), so the shard layout does
                // not influence them and they match the single-threaded
                // engine bit-for-bit.
                s.spans = Some(SpanStore::new(self.seed));
            }
            if self.telemetry_period.is_some() {
                if s.telemetry.is_none() {
                    s.telemetry = Some(TelemetryStore::new());
                }
                s.telemetry_period = self.telemetry_period;
            }
        }
        let profile = self.telemetry_period.is_some();
        let start_steps = self.steps;
        let mut round = 0u64;
        let outcome = loop {
            let nexts: Vec<Option<SimTime>> =
                self.shards.iter().map(Shard::next_event_time).collect();
            let Some(t_min) = nexts.iter().flatten().min().copied() else {
                break RunOutcome::Drained;
            };
            if let Some(d) = deadline {
                if t_min > d {
                    break RunOutcome::LimitReached;
                }
            }
            let done = self.steps.saturating_sub(start_steps);
            if done >= max_steps {
                break RunOutcome::LimitReached;
            }
            let budget = max_steps - done;
            let (horizons, sweeps) = self.horizons(&nexts, deadline);
            if profile {
                // Engine self-profiling (virtual-domain only — wall
                // clocks are lint-banned in product crates): round count,
                // channel-clock relaxation sweeps (the CMB null-message
                // analogue), and per-shard busy/stall shares in events.
                self.metrics.incr("runtime.sharded.rounds");
                self.metrics.add("runtime.sharded.cc_sweeps", sweeps);
            }

            match probe.as_deref_mut() {
                None => self.run_round(&horizons, budget),
                Some(p) => self.run_round_ordered(&nexts, &horizons, budget, round, p),
            }
            round += 1;

            // Deterministic exchange: shards in index order, each shard's
            // sends in production order. Each message is checked against
            // its link's lookahead — the channel-clock invariant — which
            // together with the horizon construction guarantees it lands
            // at or past its receiver's processed window.
            let mut moved = Vec::new();
            let mut stalled = 0u64;
            for (j, s) in self.shards.iter_mut().enumerate() {
                self.now = self.now.max(s.now);
                self.steps += s.processed;
                if profile {
                    // A shard that processed nothing this round spent the
                    // whole window blocked on the barrier: the per-shard
                    // busy (events) vs. barrier-wait (stalled rounds)
                    // split, measured in deterministic virtual units.
                    if s.processed == 0 {
                        stalled += 1;
                        self.metrics
                            .incr(&format!("runtime.shard{j}.stalled_rounds"));
                    } else {
                        self.metrics
                            .add(&format!("runtime.shard{j}.busy_events"), s.processed);
                    }
                }
                s.processed = 0;
                moved.extend(
                    s.cross
                        .drain(..)
                        .map(|(sent, time, dst, msg)| (j as u32, sent, time, dst, msg)),
                );
            }
            if profile {
                self.metrics
                    .add("runtime.sharded.stalled_shard_rounds", stalled);
                self.metrics
                    .add("runtime.sharded.cross_msgs", moved.len() as u64);
            }
            for (src, sent, time, dst, msg) in moved {
                let loc = self.locs[dst.index()];
                let la = self.la[src as usize][loc.shard as usize];
                assert!(
                    time >= sent.saturating_add(la),
                    "lookahead violation: cross-shard message for {dst} at {time} \
                     sent at {sent} undercuts the link lookahead ({la}) from shard \
                     {src} to shard {peer} — the configured lookahead is not a \
                     lower bound on cross-node delay",
                    peer = loc.shard,
                );
                self.shards[loc.shard as usize].push(time, loc, dst, msg);
            }
            if self.shards.iter().any(|s| s.stop) {
                break RunOutcome::Stopped;
            }
        };
        let mut merged = Metrics::new();
        for s in &mut self.shards {
            merged.merge_from(&std::mem::take(&mut s.metrics));
        }
        self.metrics.merge_from(&merged);
        outcome
    }

    /// Explorer-mode round: runs the active shards sequentially in the
    /// order the probe picks, then the idle shards (whose windows are
    /// empty by construction) in index order.
    fn run_round_ordered(
        &mut self,
        nexts: &[Option<SimTime>],
        horizons: &[Option<SimTime>],
        budget: u64,
        round: u64,
        probe: &mut ScheduleProbe<'_>,
    ) {
        let active: Vec<usize> = (0..self.shards.len())
            .filter(|&i| match (nexts[i], horizons[i]) {
                (Some(t), Some(h)) => t < h,
                (Some(_), None) => true,
                (None, _) => false,
            })
            .collect();
        let order = (probe.pick)(round, &active);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted, active,
            "round {round}: schedule must be a permutation of the active shards"
        );
        let idle = (0..self.shards.len()).filter(|i| !active.contains(i));
        for i in order.iter().copied().chain(idle) {
            self.shards[i].run_window(horizons[i], &self.locs, i as u32, budget);
        }
        probe.log.push(active);
    }

    /// Runs one window across all shards on the worker pool.
    fn run_round(&mut self, horizons: &[Option<SimTime>], budget: u64) {
        let locs = &self.locs;
        let n = self.shards.len();
        if self.workers <= 1 || n <= 1 {
            for (i, s) in self.shards.iter_mut().enumerate() {
                s.run_window(horizons[i], locs, i as u32, budget);
            }
            return;
        }
        let slots: Vec<Mutex<&mut Shard>> = self.shards.iter_mut().map(Mutex::new).collect();
        let workers = self.workers.min(n);
        let active = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                let active = &active;
                scope.spawn(move || {
                    let mut did_work = false;
                    for (i, slot) in slots.iter().enumerate() {
                        if i % workers != w {
                            continue;
                        }
                        // Poison recovery mirrors Shared<T>: a panicking
                        // worker already aborts the run; cascading
                        // "poisoned" panics on the other workers would
                        // bury the original diagnostic.
                        let mut shard = slot
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        shard.run_window(horizons[i], locs, i as u32, budget);
                        did_work |= shard.processed > 0;
                    }
                    if did_work {
                        active.fetch_or(1 << w, Ordering::Relaxed);
                    }
                });
            }
        });
        let active_count = active.load(Ordering::Relaxed).count_ones() as u64;
        if active_count > 0 {
            // Track peak concurrency so tests (and users) can verify the
            // backend actually fans out over OS threads.
            let peak = self.metrics.counter("runtime.sharded.active_workers.peak");
            if active_count > peak {
                self.metrics
                    .add("runtime.sharded.active_workers.peak", active_count - peak);
            }
        }
    }
}

/// Picks the worker count: explicit config wins, then `FRACTOS_WORKERS`,
/// then `min(available cores, shards)` — floored at two threads whenever
/// there is more than one shard, so parallel code paths are exercised even
/// on single-core hosts (threads then interleave on one core).
fn resolve_workers(config: &RuntimeConfig, shards: usize) -> usize {
    let configured = config.workers.or_else(|| {
        std::env::var("FRACTOS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
    });
    let workers = configured.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        cores.min(shards).max(if shards > 1 { 2 } else { 1 })
    });
    workers.clamp(1, shards.max(1))
}

impl Runtime for ShardedSim {
    fn add_actor(&mut self, name: &str, actor: Box<dyn Actor>) -> ActorId {
        self.register(0, name, actor)
    }

    fn add_actor_on(&mut self, node: usize, name: &str, actor: Box<dyn Actor>) -> ActorId {
        self.register(node, name, actor)
    }

    fn post_boxed(&mut self, delay: SimDuration, dst: ActorId, msg: Msg) {
        let loc = *self
            .locs
            .get(dst.index())
            .unwrap_or_else(|| panic!("post to unregistered {dst}"));
        let time = self.now.saturating_add(delay);
        self.shards[loc.shard as usize].push(time, loc, dst, msg);
    }

    fn run(&mut self) -> RunOutcome {
        self.run_rounds(u64::MAX, None)
    }

    fn run_with_limit(&mut self, max_steps: u64) -> RunOutcome {
        self.run_rounds(max_steps, None)
    }

    fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_rounds(u64::MAX, Some(deadline))
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn actor_name(&self, id: ActorId) -> &str {
        &self.names[id.index()]
    }

    fn actor_count(&self) -> usize {
        self.locs.len()
    }

    fn enable_trace(&mut self) {
        self.trace_enabled = true;
        for s in &mut self.shards {
            if s.trace.is_none() {
                s.trace = Some(Vec::new());
            }
        }
    }

    fn take_trace(&mut self) -> Vec<TraceEntry> {
        let mut all = Vec::new();
        for s in &mut self.shards {
            if let Some(t) = s.trace.as_mut() {
                all.append(t);
            }
        }
        // No global total order exists across shards; sort into the same
        // canonical (time, actor, label) order the single-threaded engine
        // returns, so equal workloads yield equal traces across backends.
        all.sort_by(|a, b| (a.time, a.actor, &a.label).cmp(&(b.time, b.actor, &b.label)));
        all
    }

    fn enable_spans(&mut self) {
        self.spans_enabled = true;
        let seed = self.seed;
        for s in &mut self.shards {
            if s.spans.is_none() {
                s.spans = Some(SpanStore::new(seed));
            }
        }
    }

    fn take_spans(&mut self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for s in &mut self.shards {
            if let Some(store) = s.spans.as_mut() {
                all.append(&mut store.take());
            }
        }
        sort_canonical(&mut all);
        all
    }

    fn enable_telemetry(&mut self, period: SimDuration) {
        assert!(period > SimDuration::ZERO, "telemetry period must be > 0");
        self.telemetry_period = Some(period);
        for s in &mut self.shards {
            if s.telemetry.is_none() {
                s.telemetry = Some(TelemetryStore::new());
            }
            s.telemetry_period = Some(period);
        }
    }

    fn telemetry_period(&self) -> Option<SimDuration> {
        self.telemetry_period
    }

    fn take_telemetry(&mut self) -> Vec<TelemetryEvent> {
        let mut all = Vec::new();
        for s in &mut self.shards {
            if let Some(store) = s.telemetry.as_mut() {
                all.append(&mut store.take());
            }
        }
        // Same contract as spans: merge per-shard buffers, then sort into
        // the canonical (time, series, actor, ord) order shared with the
        // single-threaded engine.
        sort_canonical_telemetry(&mut all);
        all
    }

    fn with_actor_any(&mut self, id: ActorId, f: &mut dyn FnMut(&mut dyn std::any::Any)) {
        let loc = self.locs[id.index()];
        let actor = self.shards[loc.shard as usize].actors[loc.local as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("missing {id}"));
        f(actor.as_mut());
    }

    fn set_node_outages(&mut self, outages: Vec<NodeOutage>) {
        // Each shard keeps only its own node's windows: the decision in
        // `run_window` is then a pure function of the delivery time.
        for (node, s) in self.shards.iter_mut().enumerate() {
            s.outages = outages.iter().filter(|o| o.node == node).copied().collect();
        }
    }

    fn backend_name(&self) -> &'static str {
        "sharded"
    }
}

impl std::fmt::Debug for ShardedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("shards", &self.shards.len())
            .field("workers", &self.workers)
            .field("now", &self.now)
            .field("actors", &self.locs.len())
            .field("pending", &self.pending())
            .field("steps", &self.steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeExt;

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(2);

    fn config(seed: u64, nodes: usize) -> RuntimeConfig {
        let mut c = RuntimeConfig::new(seed, nodes, LOOKAHEAD);
        c.workers = Some(2);
        c
    }

    /// Sends `remaining` pings to a peer with at-least-lookahead delay.
    struct Pinger {
        peer: Option<ActorId>,
        received: Vec<(SimTime, u32)>,
    }

    impl Actor for Pinger {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let v = *msg.downcast::<u32>().expect("u32 ping");
            self.received.push((ctx.now(), v));
            if let (Some(peer), true) = (self.peer, v > 0) {
                ctx.send_after(LOOKAHEAD, peer, v - 1);
            }
        }
    }

    fn pinger() -> Box<Pinger> {
        Box::new(Pinger {
            peer: None,
            received: Vec::new(),
        })
    }

    #[test]
    fn cross_shard_ping_pong_drains() {
        let mut rt = ShardedSim::new(&config(1, 2));
        let a = rt.add_actor_on(0, "a", pinger());
        let b = rt.add_actor_on(1, "b", pinger());
        rt.with_actor::<Pinger, _>(a, |p| p.peer = Some(b));
        rt.with_actor::<Pinger, _>(b, |p| p.peer = Some(a));
        rt.post(SimDuration::ZERO, a, 10u32);
        assert_eq!(rt.run(), RunOutcome::Drained);
        assert_eq!(rt.steps(), 11);
        let a_seen = rt.with_actor::<Pinger, _>(a, |p| p.received.clone());
        let b_seen = rt.with_actor::<Pinger, _>(b, |p| p.received.clone());
        assert_eq!(
            a_seen.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            [10, 8, 6, 4, 2, 0]
        );
        assert_eq!(
            b_seen.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            [9, 7, 5, 3, 1]
        );
    }

    #[test]
    fn same_seed_same_behavior() {
        let run = || {
            let mut rt = ShardedSim::new(&config(99, 3));
            let ids: Vec<_> = (0..3).map(|n| rt.add_actor_on(n, "p", pinger())).collect();
            for (i, id) in ids.iter().enumerate() {
                let peer = ids[(i + 1) % ids.len()];
                rt.with_actor::<Pinger, _>(*id, |p| p.peer = Some(peer));
            }
            rt.post(SimDuration::ZERO, ids[0], 20u32);
            rt.run();
            let mut log = Vec::new();
            for id in ids {
                rt.with_actor::<Pinger, _>(id, |p| log.push(p.received.clone()));
            }
            (rt.steps(), rt.now(), log)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut rt = ShardedSim::new(&config(5, 2));
        let a = rt.add_actor_on(0, "a", pinger());
        rt.post(SimDuration::from_micros(1), a, 0u32);
        rt.post(SimDuration::from_micros(100), a, 0u32);
        assert_eq!(
            rt.run_until(SimTime::from_nanos(50_000)),
            RunOutcome::LimitReached
        );
        assert_eq!(rt.pending(), 1);
        assert_eq!(rt.steps(), 1);
    }

    #[test]
    fn stop_halts_the_engine() {
        struct Stopper;
        impl Actor for Stopper {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                ctx.stop();
            }
        }
        let mut rt = ShardedSim::new(&config(5, 2));
        let a = rt.add_actor_on(0, "stop", Box::new(Stopper));
        rt.post(SimDuration::ZERO, a, 0u32);
        rt.post(SimDuration::from_secs(1), a, 0u32);
        assert_eq!(rt.run(), RunOutcome::Stopped);
        assert_eq!(rt.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn undelayed_cross_shard_send_is_rejected() {
        struct Rogue {
            peer: ActorId,
        }
        impl Actor for Rogue {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                let peer = self.peer;
                ctx.send_now(peer, 0u32);
            }
        }
        let mut rt = ShardedSim::new(&config(5, 2));
        let sink = rt.add_actor_on(1, "sink", pinger());
        let rogue = rt.add_actor_on(0, "rogue", Box::new(Rogue { peer: sink }));
        rt.post(SimDuration::ZERO, rogue, 0u32);
        rt.run();
    }

    #[test]
    fn metrics_merge_across_shards() {
        struct Counting;
        impl Actor for Counting {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                ctx.metrics().incr("hits");
                ctx.metrics().sample("lat", 1.5);
            }
        }
        let mut rt = ShardedSim::new(&config(5, 2));
        let a = rt.add_actor_on(0, "a", Box::new(Counting));
        let b = rt.add_actor_on(1, "b", Box::new(Counting));
        rt.post(SimDuration::ZERO, a, 0u32);
        rt.post(SimDuration::ZERO, b, 0u32);
        rt.run();
        assert_eq!(rt.metrics().counter("hits"), 2);
        assert_eq!(rt.metrics().histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn forced_single_worker_still_correct() {
        let mut cfg = config(7, 2);
        cfg.workers = Some(1);
        let mut rt = ShardedSim::new(&cfg);
        let a = rt.add_actor_on(0, "a", pinger());
        let b = rt.add_actor_on(1, "b", pinger());
        rt.with_actor::<Pinger, _>(a, |p| p.peer = Some(b));
        rt.with_actor::<Pinger, _>(b, |p| p.peer = Some(a));
        rt.post(SimDuration::ZERO, a, 6u32);
        assert_eq!(rt.run(), RunOutcome::Drained);
        assert_eq!(rt.steps(), 7);
    }

    /// A fixed-delay echo for the per-link tests.
    struct Echo {
        peer: ActorId,
        delay: SimDuration,
    }
    impl Actor for Echo {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let v = *msg.downcast::<u32>().expect("u32");
            if v > 0 {
                let (peer, delay) = (self.peer, self.delay);
                ctx.send_after(delay, peer, v - 1);
            }
        }
    }

    /// 3 nodes; the 0↔1 link allows 1 µs messages while every other link
    /// requires 5 µs. Under a single global-minimum bound the 5 µs links
    /// would be over-constrained or the 1 µs traffic rejected.
    fn asymmetric_config(seed: u64) -> RuntimeConfig {
        let fast = SimDuration::from_micros(1);
        let slow = SimDuration::from_micros(5);
        let mut la = vec![vec![slow; 3]; 3];
        la[0][1] = fast;
        la[1][0] = fast;
        let mut c = RuntimeConfig::new(seed, 3, fast);
        c.link_lookahead = Some(la);
        c.workers = Some(2);
        c
    }

    #[test]
    fn per_link_lookahead_accepts_fast_link_traffic() {
        let mut rt = ShardedSim::new(&asymmetric_config(3));
        let a = rt.add_actor_on(0, "a", pinger());
        let b = rt.add_actor_on(1, "b", pinger());
        rt.with_actor::<Pinger, _>(a, |p| p.peer = Some(b));
        rt.with_actor::<Pinger, _>(b, |p| p.peer = Some(a));
        // Pinger replies after LOOKAHEAD (2 µs) ≥ the 1 µs fast link bound
        // but below the 5 µs bound of every other link: accepted, because
        // only the 0↔1 link's lookahead governs this traffic.
        rt.post(SimDuration::ZERO, a, 8u32);
        assert_eq!(rt.run(), RunOutcome::Drained);
        assert_eq!(rt.steps(), 9);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn per_link_lookahead_rejects_undercutting_the_slow_link() {
        let mut rt = ShardedSim::new(&asymmetric_config(3));
        let sink = rt.add_actor_on(2, "sink", pinger());
        // 2 µs delay clears the 1 µs fast link but undercuts the 5 µs
        // bound on the 0→2 link.
        let rogue = rt.add_actor_on(
            0,
            "rogue",
            Box::new(Echo {
                peer: sink,
                delay: SimDuration::from_micros(2),
            }),
        );
        rt.post(SimDuration::ZERO, rogue, 1u32);
        rt.run();
    }

    #[test]
    fn node_outage_drops_on_the_sharded_backend() {
        let mut rt = ShardedSim::new(&config(3, 2));
        let a = rt.add_actor_on(0, "a", pinger());
        let b = rt.add_actor_on(1, "b", pinger());
        rt.set_node_outages(vec![NodeOutage {
            node: 1,
            down: SimTime::from_nanos(10_000),
            up: Some(SimTime::from_nanos(20_000)),
        }]);
        rt.post(SimDuration::from_micros(5), b, 1u32); // before: delivered
        rt.post(SimDuration::from_micros(15), b, 2u32); // interior: dropped
        rt.post(SimDuration::from_micros(25), b, 3u32); // after: delivered
        rt.post(SimDuration::from_micros(15), a, 4u32); // other node: delivered
        assert_eq!(rt.run(), RunOutcome::Drained);
        let b_seen = rt.with_actor::<Pinger, _>(b, |p| p.received.clone());
        assert_eq!(b_seen.iter().map(|(_, v)| *v).collect::<Vec<_>>(), [1, 3]);
        let a_seen = rt.with_actor::<Pinger, _>(a, |p| p.received.clone());
        assert_eq!(a_seen.len(), 1);
        assert_eq!(rt.metrics().counter("engine.outage_drops"), 1);
    }

    #[test]
    fn heterogeneous_links_drain_deterministically() {
        let run = || {
            let mut rt = ShardedSim::new(&asymmetric_config(11));
            // Ring of echoes with 5 µs hops (≥ every link bound).
            let ids: Vec<_> = (0..3)
                .map(|n| {
                    rt.add_actor_on(
                        n,
                        "e",
                        Box::new(Echo {
                            peer: ActorId::from_raw(0),
                            delay: SimDuration::from_micros(5),
                        }),
                    )
                })
                .collect();
            for (i, id) in ids.iter().enumerate() {
                let peer = ids[(i + 1) % ids.len()];
                rt.with_actor::<Echo, _>(*id, |e| e.peer = peer);
            }
            rt.post(SimDuration::ZERO, ids[0], 12u32);
            assert_eq!(rt.run(), RunOutcome::Drained);
            (rt.steps(), rt.now())
        };
        assert_eq!(run(), run());
        let (steps, end) = run();
        assert_eq!(steps, 13);
        assert_eq!(end, SimTime::from_nanos(12 * 5_000));
    }
}
