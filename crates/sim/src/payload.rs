//! Zero-copy message payloads.
//!
//! Extent bytes used to travel through the simulated stack as `Vec<u8>`,
//! deep-copied at every actor boundary: request creation cloned the
//! immediates into the descriptor, delivery cloned them again into the
//! process, and retransmission kept whole duplicates alive. [`Payload`] is
//! a cheap-clone handle — an `Arc<[u8]>` plus an `(offset, len)` window —
//! so passing bytes between actors is a refcount bump and slicing is free.
//!
//! Mutation is copy-on-write: [`Payload::make_mut`] returns a mutable view,
//! materializing a private full copy only when the buffer is shared or the
//! handle is a sub-slice. Since simulated payloads are immutable in all but
//! one place (fault-injected bit flips), the copy almost never happens.
//!
//! The type dereferences to `[u8]` and compares against `Vec<u8>`/`[u8]`,
//! so most call sites treat it exactly like the byte vector it replaced.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheap-clone, copy-on-write handle to immutable bytes.
#[derive(Clone)]
pub struct Payload {
    bytes: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Payload {
    /// An empty payload (no allocation is shared, but none is needed).
    pub fn empty() -> Self {
        Payload {
            bytes: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[self.off..self.off + self.len]
    }

    /// A sub-view of this payload sharing the same backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the payload's bounds.
    pub fn slice(&self, range: Range<usize>) -> Payload {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "payload slice {range:?} out of bounds (len {})",
            self.len
        );
        Payload {
            bytes: Arc::clone(&self.bytes),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Copies the bytes into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Mutable access to the bytes, copy-on-write: if the backing buffer
    /// is shared with other handles (or this handle views a sub-slice), a
    /// private copy is made first, so no other holder ever observes the
    /// mutation.
    pub fn make_mut(&mut self) -> &mut [u8] {
        let whole = self.off == 0 && self.len == self.bytes.len();
        if !whole || Arc::get_mut(&mut self.bytes).is_none() {
            let copied: Arc<[u8]> = Arc::from(self.as_slice());
            self.bytes = copied;
            self.off = 0;
            self.len = self.bytes.len();
        }
        Arc::get_mut(&mut self.bytes).expect("payload buffer is unique after copy-on-write")
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Payload {
            bytes: Arc::from(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Self {
        Payload {
            bytes: Arc::from(s),
            off: 0,
            len: s.len(),
        }
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(a: [u8; N]) -> Self {
        Payload::from(&a[..])
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(bytes: Arc<[u8]>) -> Self {
        let len = bytes.len();
        Payload { bytes, off: 0, len }
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Payload {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Payload {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full contents would drown logs for extent-sized payloads.
        const PREVIEW: usize = 16;
        if self.len <= PREVIEW {
            write!(f, "Payload({:?})", self.as_slice())
        } else {
            write!(
                f,
                "Payload({:?}.. len {})",
                &self.as_slice()[..PREVIEW],
                self.len
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_vec_and_compares_like_bytes() {
        let p = Payload::from(vec![1u8, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p, vec![1u8, 2, 3]);
        assert_eq!(vec![1u8, 2, 3], p);
        assert_eq!(p, [1u8, 2, 3]);
        assert_eq!(&p[..], &[1u8, 2, 3]);
        assert_eq!(p.to_vec(), vec![1, 2, 3]);
        assert!(Payload::empty().is_empty());
    }

    #[test]
    fn clones_share_the_backing_buffer() {
        let p = Payload::from(vec![0u8; 4096]);
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.bytes, &q.bytes));
        assert_eq!(p, q);
    }

    #[test]
    fn slices_are_views_not_copies() {
        let p = Payload::from((0u8..64).collect::<Vec<_>>());
        let s = p.slice(10..20);
        assert!(Arc::ptr_eq(&p.bytes, &s.bytes));
        assert_eq!(&s[..], &(10u8..20).collect::<Vec<_>>()[..]);
        let ss = s.slice(2..4);
        assert_eq!(&ss[..], &[12u8, 13]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Payload::from(vec![0u8; 4]).slice(2..9);
    }

    #[test]
    fn make_mut_copies_only_when_shared() {
        let mut p = Payload::from(vec![1u8, 2, 3]);
        let before = Arc::as_ptr(&p.bytes);
        p.make_mut()[0] = 9; // unique full view: in-place
        assert_eq!(Arc::as_ptr(&p.bytes), before);
        assert_eq!(p, vec![9u8, 2, 3]);

        let q = p.clone();
        let mut r = q.clone();
        r.make_mut()[1] = 7; // shared: copy-on-write
        assert_eq!(q, vec![9u8, 2, 3]);
        assert_eq!(r, vec![9u8, 7, 3]);

        let mut s = p.slice(1..3);
        s.make_mut()[0] = 0; // sub-slice: materializes
        assert_eq!(s, vec![0u8, 3]);
        assert_eq!(p, vec![9u8, 2, 3]);
    }

    #[test]
    fn hash_and_ord_follow_byte_content() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Payload::from(vec![1u8, 2]);
        let b = Payload::from(vec![0u8, 1, 2, 3]).slice(1..3);
        let hash = |p: &Payload| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(a, b);
        assert_eq!(hash(&a), hash(&b));
        let c = Payload::from(vec![1u8, 3]);
        assert_eq!(a.cmp(&c), std::cmp::Ordering::Less);
    }

    #[test]
    fn debug_previews_long_payloads() {
        let long = Payload::from(vec![0u8; 100]);
        let s = format!("{long:?}");
        assert!(s.contains("len 100"), "{s}");
        assert!(s.len() < 120, "{s}");
    }
}
