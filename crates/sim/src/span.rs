//! Causal span recording: deterministic trace/span identifiers and the
//! per-engine span store behind `Runtime::enable_spans`/`take_spans`.
//!
//! # Design
//!
//! Every top-level request grows a *span tree*: the root span's own id doubles
//! as the trace id, and each child records the id of the span that caused it.
//! A [`TraceCtx`] (trace id + parent span id) rides on wire messages and
//! continuations so causality survives hops between actors, retransmits, and
//! timer-driven callbacks.
//!
//! # Determinism rules
//!
//! - Span ids are derived from `(store seed, actor id, per-actor counter)`
//!   through SplitMix64 — never from the live simulation RNG (recording a
//!   span consumes **zero** RNG draws) and never from the wall clock.
//! - Per-actor event processing order is identical on the single-threaded and
//!   sharded engines, so per-actor counters — and therefore ids — match
//!   bit-for-bit across backends.
//! - When recording is disabled the store is `None`: no ids are minted, no
//!   counters advance, no labels are formatted. Runs with recording off are
//!   byte-identical to runs on a build without the subsystem.
//!
//! The canonical output order (see [`SpanStore::take`]'s callers,
//! `Runtime::take_spans`) is `(start, end, actor, ord)`; `(actor, ord)` is
//! unique, so the order is total and backend-independent.

use std::collections::HashMap;
use std::fmt;

use crate::engine::ActorId;
use crate::time::SimTime;

/// SplitMix64 finalizer: the same mixer as [`crate::SimRng`], usable as a
/// standalone hash for deterministic id derivation.
#[must_use]
pub const fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A trace context carried on wire messages and continuations: the trace id
/// plus the id of the span that causally precedes whatever happens next.
///
/// The all-zero value ([`TraceCtx::NONE`]) means "no active trace"; a span
/// recorded under it starts a new trace whose id is the span's own id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// Trace id — the root span's id, shared by every span in the tree.
    pub trace: u64,
    /// Parent span id for the next span recorded under this context.
    pub span: u64,
}

impl TraceCtx {
    /// The empty context: no active trace.
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0 };

    /// Returns true if this context carries no active trace.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.span == 0
    }

    /// Returns true if this context carries an active trace.
    #[must_use]
    pub fn is_some(self) -> bool {
        self.span != 0
    }
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}/{:016x}", self.trace, self.span)
    }
}

/// The phase of the request chain a span covers. Used by the critical-path
/// analyzer to attribute latency to network / device / control-plane time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A syscall posted by a process (zero-width marker at post time).
    Syscall,
    /// Control-plane handling time (validation, table walks, serial core).
    Control,
    /// Delivery of a request/continuation into a process.
    Deliver,
    /// Fabric serialization / link occupancy for one hop.
    FabricSer,
    /// Fabric propagation (base latency) for one hop.
    FabricProp,
    /// Bulk data movement (RDMA windows, memory-copy chunk loops).
    Data,
    /// Device-side processing modeled by an adaptor (GPU exec, NVMe media).
    Device,
    /// Waiting out a retransmit timeout after a lost message.
    Retransmit,
    /// An injected fault observed on the path (zero-width marker).
    Fault,
    /// An integrity-check failure (zero-width marker).
    Integrity,
    /// A crash-recovery phase (detect, declare, revoke, re-home,
    /// re-dispatch) recorded by the failure detector and its consumers.
    Recovery,
}

impl SpanKind {
    /// Stable lowercase name, used as the Chrome trace event category.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Syscall => "syscall",
            SpanKind::Control => "control",
            SpanKind::Deliver => "deliver",
            SpanKind::FabricSer => "fabric-ser",
            SpanKind::FabricProp => "fabric-prop",
            SpanKind::Data => "data",
            SpanKind::Device => "device",
            SpanKind::Retransmit => "retransmit",
            SpanKind::Fault => "fault",
            SpanKind::Integrity => "integrity",
            SpanKind::Recovery => "recovery",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span: a named interval of virtual time on one actor, linked
/// into a per-request tree by `(trace, parent)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace id (the root span's id).
    pub trace: u64,
    /// This span's id (never zero).
    pub id: u64,
    /// Parent span id, or zero for a root span.
    pub parent: u64,
    /// Phase classification.
    pub kind: SpanKind,
    /// Human-readable label (e.g. the syscall name or link description).
    pub label: String,
    /// The actor that recorded the span.
    pub actor: ActorId,
    /// Per-actor creation index; `(actor, ord)` is unique and identical
    /// across backends, giving the canonical sort its total order.
    pub ord: u64,
    /// Start of the interval (virtual time).
    pub start: SimTime,
    /// End of the interval; equal to `start` for zero-width markers.
    pub end: SimTime,
}

impl SpanRecord {
    /// The context that makes further spans children of this one.
    #[must_use]
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace: self.trace,
            span: self.id,
        }
    }
}

impl fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} .. {}] {} {} {} ({:016x}/{:016x}<-{:016x})",
            self.start,
            self.end,
            self.actor,
            self.kind,
            self.label,
            self.trace,
            self.id,
            self.parent
        )
    }
}

/// Accumulates [`SpanRecord`]s for one engine (or one shard of the sharded
/// engine). Ids are minted from the store seed, the recording actor, and a
/// per-actor counter, so stores on different shards mint non-colliding ids
/// that match the single-threaded engine's bit-for-bit.
#[derive(Debug)]
pub struct SpanStore {
    seed: u64,
    counters: HashMap<u32, u64>,
    spans: Vec<SpanRecord>,
}

impl SpanStore {
    /// Creates an empty store. Every store of one run shares the run seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SpanStore {
            seed,
            counters: HashMap::new(),
            spans: Vec::new(),
        }
    }

    /// Mints the id for `(seed, actor, ord)`. Ids are never zero (zero is
    /// the "no parent" sentinel).
    fn mint(seed: u64, actor: ActorId, ord: u64) -> u64 {
        let lane = splitmix64(((actor.index() as u64) << 32) | 0x5157_0B5E);
        let id = splitmix64(splitmix64(seed ^ lane).wrapping_add(ord));
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Records a span on `actor` and returns the context for its children.
    ///
    /// When `parent` is [`TraceCtx::NONE`] the span starts a new trace rooted
    /// at itself.
    pub fn record(
        &mut self,
        actor: ActorId,
        kind: SpanKind,
        label: String,
        parent: TraceCtx,
        start: SimTime,
        end: SimTime,
    ) -> TraceCtx {
        let counter = self.counters.entry(actor.index() as u32).or_insert(0);
        let ord = *counter;
        *counter += 1;
        let id = SpanStore::mint(self.seed, actor, ord);
        let (trace, parent_id) = if parent.is_none() {
            (id, 0)
        } else {
            (parent.trace, parent.span)
        };
        self.spans.push(SpanRecord {
            trace,
            id,
            parent: parent_id,
            kind,
            label,
            actor,
            ord,
            start,
            end,
        });
        TraceCtx { trace, span: id }
    }

    /// Drains the recorded spans, leaving counters intact so later spans on
    /// the same store keep minting fresh ids.
    pub fn take(&mut self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans)
    }

    /// Number of spans currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Sorts spans into the canonical cross-backend order: `(start, end, actor,
/// ord)`. `(actor, ord)` is unique, so the order is total.
pub fn sort_canonical(spans: &mut [SpanRecord]) {
    spans.sort_by(|a, b| {
        (a.start, a.end, a.actor.index(), a.ord).cmp(&(b.start, b.end, b.actor.index(), b.ord))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let mut a = SpanStore::new(61);
        let mut b = SpanStore::new(61);
        for i in 0..64 {
            let actor = ActorId::from_raw(i % 5);
            let ca = a.record(
                actor,
                SpanKind::Control,
                "x".into(),
                TraceCtx::NONE,
                at(i as u64),
                at(i as u64),
            );
            let cb = b.record(
                actor,
                SpanKind::Control,
                "x".into(),
                TraceCtx::NONE,
                at(i as u64),
                at(i as u64),
            );
            assert_eq!(ca, cb);
            assert_ne!(ca.span, 0);
        }
        assert_eq!(a.take(), b.take());
    }

    #[test]
    fn root_span_defines_trace_id() {
        let mut s = SpanStore::new(7);
        let root = s.record(
            ActorId::from_raw(0),
            SpanKind::Syscall,
            "r".into(),
            TraceCtx::NONE,
            at(0),
            at(0),
        );
        assert_eq!(root.trace, root.span);
        let child = s.record(
            ActorId::from_raw(1),
            SpanKind::Control,
            "c".into(),
            root,
            at(1),
            at(2),
        );
        assert_eq!(child.trace, root.trace);
        let spans = s.take();
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, root.span);
    }

    #[test]
    fn ids_unique_across_actors_and_counters() {
        let mut s = SpanStore::new(99);
        let mut seen = std::collections::HashSet::new();
        for actor in 0..8u32 {
            for _ in 0..32 {
                let c = s.record(
                    ActorId::from_raw(actor),
                    SpanKind::Data,
                    "d".into(),
                    TraceCtx::NONE,
                    at(0),
                    at(0),
                );
                assert!(seen.insert(c.span), "duplicate span id");
            }
        }
    }

    #[test]
    fn take_preserves_counters() {
        let mut s = SpanStore::new(3);
        let a = s.record(
            ActorId::from_raw(0),
            SpanKind::Fault,
            "f".into(),
            TraceCtx::NONE,
            at(0),
            at(0),
        );
        s.take();
        let b = s.record(
            ActorId::from_raw(0),
            SpanKind::Fault,
            "f".into(),
            TraceCtx::NONE,
            at(0),
            at(0),
        );
        assert_ne!(a.span, b.span);
    }

    #[test]
    fn canonical_sort_is_total() {
        let mut s = SpanStore::new(5);
        s.record(
            ActorId::from_raw(1),
            SpanKind::Control,
            "b".into(),
            TraceCtx::NONE,
            at(5),
            at(9),
        );
        s.record(
            ActorId::from_raw(0),
            SpanKind::Control,
            "a".into(),
            TraceCtx::NONE,
            at(5),
            at(9),
        );
        s.record(
            ActorId::from_raw(0),
            SpanKind::Control,
            "c".into(),
            TraceCtx::NONE,
            at(1),
            at(2),
        );
        let mut spans = s.take();
        sort_canonical(&mut spans);
        assert_eq!(spans[0].label, "c");
        assert_eq!(spans[1].label, "a");
        assert_eq!(spans[2].label, "b");
    }
}
