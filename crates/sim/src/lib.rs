#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Deterministic discrete-event simulation engine for FractOS-rs.
//!
//! The FractOS paper evaluates on a 3-node RDMA cluster with SmartNICs, GPUs
//! and NVMe SSDs. This crate is the substitute substrate: a single-threaded,
//! seeded, discrete-event simulator on which the real FractOS logic (the
//! `fractos-core` Controllers, Processes, device adaptors and services) runs
//! with a virtual clock. Determinism is a hard requirement — integration
//! tests assert that equal seeds produce identical event traces.
//!
//! # Examples
//!
//! ```
//! use fractos_sim::{Actor, Ctx, Msg, Sim, SimDuration};
//!
//! struct Counter(u64);
//! impl Actor for Counter {
//!     fn handle(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! let id = sim.add_actor("counter", Box::new(Counter(0)));
//! sim.post(SimDuration::from_micros(3), id, ());
//! sim.run();
//! sim.with_actor::<Counter, _>(id, |c| assert_eq!(c.0, 1));
//! ```

pub mod engine;
#[cfg(feature = "lockdep")]
pub mod lockdep;
pub mod metrics;
pub mod payload;
pub mod queue;
pub mod rng;
pub mod runtime;
pub mod sharded;
pub mod shared;
pub mod span;
pub mod telemetry;
pub mod time;

pub use engine::{Actor, ActorId, Ctx, Msg, NodeOutage, RunOutcome, Sim, TraceEntry};
pub use metrics::{quantile_sorted, Histogram, Metrics, StreamHist};
pub use payload::Payload;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use runtime::{
    build_runtime, runtime_from_env, Runtime, RuntimeConfig, RuntimeExt, RuntimeKind,
};
pub use sharded::{ScheduleProbe, ShardedSim};
pub use shared::{Shared, SharedGuard};
pub use span::{SpanKind, SpanRecord, SpanStore, TraceCtx};
pub use telemetry::{
    sort_canonical_telemetry, TelemetryConfig, TelemetryEvent, TelemetryKind, TelemetryStore,
    TELEMETRY_EXTERNAL,
};
pub use time::{SimDuration, SimTime};
