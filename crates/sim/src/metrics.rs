//! Counters and latency histograms for experiments.
//!
//! Experiments record named counters (e.g. per-link message counts) and
//! latency samples. The registry is owned by the simulation and exposed to
//! actors through the [`crate::engine::Ctx`]; benches read it after the run.

use std::collections::BTreeMap;

use crate::time::SimDuration;

/// The `q`-quantile (`0.0..=1.0`) of an ascending-sorted slice by
/// nearest-rank, or 0 when empty.
///
/// This is the single reference implementation of the percentile math:
/// [`Histogram::quantile`], `fractos-obs`'s snapshot summaries, and the
/// property test pinning [`StreamHist`] against a sorted reference all
/// route through it, so every exact-quantile consumer agrees byte-for-byte.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Sub-bucket resolution of [`StreamHist`]: each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantile error at `2^-SUB_BITS` (≈ 1.6 %).
const SUB_BITS: u32 = 6;

/// A deterministic log-linear (HDR-style) streaming histogram over `u64`
/// values (the telemetry plane records integer nanoseconds).
///
/// Values are folded into fixed log-linear buckets at record time —
/// memory is bounded by the number of distinct buckets, not the sample
/// count, so the structure can absorb unbounded event streams. Quantiles
/// are *exact at bucket granularity*: the reported value is the upper
/// bound of the bucket holding the nearest-rank sample (clamped to the
/// observed min/max), within one bucket width of the exact sample. Bucket
/// boundaries are a pure function of the value, so merged histograms and
/// histograms built from differently interleaved streams are identical —
/// the cross-backend byte-identity of telemetry exports rests on this.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamHist {
    /// Occupied buckets only, keyed by bucket index; BTree order is
    /// ascending value order, which quantile walks rely on.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl StreamHist {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        StreamHist::default()
    }

    /// Index of the bucket holding `v`. Values below `2^SUB_BITS` get
    /// exact singleton buckets; above that, the top `SUB_BITS` bits after
    /// the leading one select a linear sub-bucket within the octave.
    fn bucket_index(v: u64) -> u32 {
        if v < (1 << SUB_BITS) {
            return v as u32;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((shift + 1) << SUB_BITS) + ((v >> shift) & ((1 << SUB_BITS) - 1)) as u32
    }

    /// Inclusive upper bound of bucket `idx` (the value quantiles report).
    fn bucket_hi(idx: u32) -> u64 {
        if idx < (1 << SUB_BITS) {
            return u64::from(idx);
        }
        let shift = (idx >> SUB_BITS) - 1;
        let sub = u64::from(idx & ((1 << SUB_BITS) - 1));
        let lo = ((1 << SUB_BITS) + sub) << shift;
        lo + ((1u64 << shift) - 1)
    }

    /// Width of the bucket holding `v` — the error bound the property
    /// suite holds streaming quantiles to.
    #[must_use]
    pub fn bucket_width(v: u64) -> u64 {
        if v < (1 << SUB_BITS) {
            return 1;
        }
        let msb = 63 - v.leading_zeros();
        1u64 << (msb - SUB_BITS)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(StreamHist::bucket_index(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (exact integer arithmetic).
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty. Computed from the exact integer
    /// sum, so it is independent of record order.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Minimum recorded value, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum recorded value, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) at bucket granularity: the upper
    /// bound of the bucket holding the nearest-rank value, clamped to the
    /// observed `[min, max]`. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                return StreamHist::bucket_hi(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// 50th percentile (bucket-exact).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 95th percentile (bucket-exact).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket-exact).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (bucket-exact) — the tail the streaming design
    /// exists for; the raw-sample [`Histogram`] cannot report it without
    /// retaining every sample.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds another histogram into this one. Buckets are value-keyed, so
    /// merging is associative and commutative — per-shard histograms merge
    /// into the same bytes in any order.
    pub fn merge_from(&mut self, other: &StreamHist) {
        if other.count == 0 {
            return;
        }
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Cumulative `(inclusive upper bound, cumulative count)` pairs of the
    /// occupied buckets in ascending value order — the shape Prometheus
    /// histogram exposition (`le` buckets) wants.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets.iter().map(move |(&idx, &n)| {
            cum += n;
            (StreamHist::bucket_hi(idx), cum)
        })
    }
}

/// A set of latency samples with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample (any unit; durations are recorded in microseconds).
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records a duration sample in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation, or 0 when empty.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// The `q`-quantile (`0.0..=1.0`) by nearest-rank, or 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        quantile_sorted(&self.samples, q)
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 50th percentile (alias for [`Histogram::median`]).
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Minimum sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0f64, f64::max)
    }

    /// All raw samples in insertion order is not preserved after quantile
    /// queries; use before calling quantile functions if order matters.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Named counters and histograms for one simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram.
    pub fn sample(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records a duration sample (in microseconds) into the named histogram.
    pub fn sample_duration(&mut self, name: &str, d: SimDuration) {
        self.sample(name, d.as_micros_f64());
    }

    /// Returns a histogram by name, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Returns a mutable histogram by name, if any samples were recorded.
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over all counter names matching a prefix.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters()
            .filter(move |(name, _)| name.starts_with(prefix))
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix).map(|(_, v)| v).sum()
    }

    /// Clears all counters and histograms.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Folds another registry into this one: counters add, histogram
    /// samples append. The sharded engine merges per-shard registries in
    /// shard order at the end of each run, so merged output is
    /// deterministic for a fixed shard layout.
    pub fn merge_from(&mut self, other: &Metrics) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            let dst = self.histograms.entry(name.clone()).or_default();
            for s in hist.samples() {
                dst.record(*s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msgs");
        m.add("msgs", 4);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert!((h.median() - 3.0).abs() < 1e-12);
        assert_eq!(h.p50(), h.median());
        assert_eq!(h.p95(), 5.0);
        assert_eq!(h.p99(), 5.0);
        assert!((h.quantile(1.0) - 5.0).abs() < 1e-12);
        assert!((h.stddev() - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn duration_samples_are_micros() {
        let mut m = Metrics::new();
        m.sample_duration("lat", SimDuration::from_micros(12));
        assert!((m.histogram("lat").unwrap().mean() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_sum() {
        let mut m = Metrics::new();
        m.add("net.msgs.a", 2);
        m.add("net.msgs.b", 3);
        m.add("other", 7);
        assert_eq!(m.sum_prefix("net.msgs."), 5);
        assert_eq!(m.counters_with_prefix("net.").count(), 2);
    }

    #[test]
    fn stream_hist_bucket_bounds_are_monotone_and_cover() {
        // Every value maps to a bucket whose inclusive range contains it,
        // and bucket indices are monotone in the value.
        let mut prev_idx = 0u32;
        for v in (0..4096u64)
            .chain((1u64..40).map(|i| i * 997 * 131))
            .chain([u64::MAX / 2, u64::MAX - 1, u64::MAX])
        {
            let idx = StreamHist::bucket_index(v);
            assert!(idx >= prev_idx || v < 4096, "indices monotone");
            let hi = StreamHist::bucket_hi(idx);
            assert!(v <= hi, "value {v} above its bucket hi {hi}");
            assert!(
                hi - v < StreamHist::bucket_width(v),
                "value {v} further than one width from hi {hi}"
            );
            if v >= 4096 {
                prev_idx = idx;
            }
        }
    }

    #[test]
    fn stream_hist_small_values_are_exact() {
        let mut h = StreamHist::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        // Values below 2^SUB_BITS land in singleton buckets: quantiles
        // are exact, matching the sorted reference bit-for-bit.
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p95(), 5);
        assert_eq!(h.p99(), 5);
        assert_eq!(h.p999(), 5);
    }

    #[test]
    fn stream_hist_quantiles_within_one_bucket_width() {
        let mut h = StreamHist::new();
        let mut exact: Vec<f64> = Vec::new();
        // A deterministic spread over five decades.
        let mut v = 13u64;
        for _ in 0..4000 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) % 10_000_000;
            h.record(v);
            exact.push(v as f64);
        }
        exact.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let want = quantile_sorted(&exact, q) as u64;
            let got = h.quantile(q);
            let width = StreamHist::bucket_width(want.max(1));
            assert!(
                got.abs_diff(want) <= width,
                "q={q}: streaming {got} vs exact {want} off by more than {width}"
            );
        }
    }

    #[test]
    fn stream_hist_merge_is_order_independent() {
        let values: Vec<u64> = (0..500u64).map(|i| i * i % 100_000).collect();
        let mut whole = StreamHist::new();
        let mut a = StreamHist::new();
        let mut b = StreamHist::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = StreamHist::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = StreamHist::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
    }

    #[test]
    fn stream_hist_empty_is_zeroes() {
        let h = StreamHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.cumulative_buckets().count(), 0);
    }

    #[test]
    fn stream_hist_cumulative_buckets_end_at_count() {
        let mut h = StreamHist::new();
        for v in [10u64, 10, 5_000, 120_000, 120_001] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.cumulative_buckets().collect();
        assert_eq!(buckets.last().map(|&(_, c)| c), Some(5));
        assert!(buckets
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn quantile_sorted_matches_histogram() {
        let mut h = Histogram::new();
        let mut raw = Vec::new();
        for v in [9.0, 1.0, 5.0, 3.0, 7.0] {
            h.record(v);
            raw.push(v);
        }
        raw.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), quantile_sorted(&raw, q));
        }
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("a");
        m.sample("h", 1.0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.histogram("h").is_none());
    }
}
