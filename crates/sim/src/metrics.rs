//! Counters and latency histograms for experiments.
//!
//! Experiments record named counters (e.g. per-link message counts) and
//! latency samples. The registry is owned by the simulation and exposed to
//! actors through the [`crate::engine::Ctx`]; benches read it after the run.

use std::collections::BTreeMap;

use crate::time::SimDuration;

/// A set of latency samples with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample (any unit; durations are recorded in microseconds).
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records a duration sample in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation, or 0 when empty.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// The `q`-quantile (`0.0..=1.0`) by nearest-rank, or 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 50th percentile (alias for [`Histogram::median`]).
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Minimum sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0f64, f64::max)
    }

    /// All raw samples in insertion order is not preserved after quantile
    /// queries; use before calling quantile functions if order matters.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Named counters and histograms for one simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram.
    pub fn sample(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records a duration sample (in microseconds) into the named histogram.
    pub fn sample_duration(&mut self, name: &str, d: SimDuration) {
        self.sample(name, d.as_micros_f64());
    }

    /// Returns a histogram by name, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Returns a mutable histogram by name, if any samples were recorded.
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over all counter names matching a prefix.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters()
            .filter(move |(name, _)| name.starts_with(prefix))
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix).map(|(_, v)| v).sum()
    }

    /// Clears all counters and histograms.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Folds another registry into this one: counters add, histogram
    /// samples append. The sharded engine merges per-shard registries in
    /// shard order at the end of each run, so merged output is
    /// deterministic for a fixed shard layout.
    pub fn merge_from(&mut self, other: &Metrics) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            let dst = self.histograms.entry(name.clone()).or_default();
            for s in hist.samples() {
                dst.record(*s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msgs");
        m.add("msgs", 4);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert!((h.median() - 3.0).abs() < 1e-12);
        assert_eq!(h.p50(), h.median());
        assert_eq!(h.p95(), 5.0);
        assert_eq!(h.p99(), 5.0);
        assert!((h.quantile(1.0) - 5.0).abs() < 1e-12);
        assert!((h.stddev() - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn duration_samples_are_micros() {
        let mut m = Metrics::new();
        m.sample_duration("lat", SimDuration::from_micros(12));
        assert!((m.histogram("lat").unwrap().mean() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_sum() {
        let mut m = Metrics::new();
        m.add("net.msgs.a", 2);
        m.add("net.msgs.b", 3);
        m.add("other", 7);
        assert_eq!(m.sum_prefix("net.msgs."), 5);
        assert_eq!(m.counters_with_prefix("net.").count(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("a");
        m.sample("h", 1.0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.histogram("h").is_none());
    }
}
