//! Virtual time for the discrete-event simulator.
//!
//! The simulator advances a virtual clock measured in integer nanoseconds.
//! Two newtypes keep instants and durations apart: [`SimTime`] is a point on
//! the virtual timeline and [`SimDuration`] is a span between two points.
//! Nanosecond resolution is sufficient for the paper's calibration constants
//! (the finest is a fraction of a microsecond).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// causality bug in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from integer microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the nanosecond count overflows `u64` (≈ 584 years).
    pub const fn from_micros(us: u64) -> Self {
        match us.checked_mul(1_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_micros overflow"),
        }
    }

    /// Creates a duration from integer milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the nanosecond count overflows `u64`.
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_millis overflow"),
        }
    }

    /// Creates a duration from integer seconds.
    ///
    /// # Panics
    ///
    /// Panics if the nanosecond count overflows `u64`.
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_secs overflow"),
        }
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1_000_000.0)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * 1_000_000_000.0).round() as u64)
    }

    /// Returns the raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition (pins at `u64::MAX` nanoseconds instead of
    /// panicking — used for "far future" horizon arithmetic).
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating scalar multiplication.
    pub fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// Checked addition; `None` on `u64` nanosecond overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Checked scalar multiplication; `None` on overflow.
    pub fn checked_mul(self, rhs: u64) -> Option<SimDuration> {
        self.0.checked_mul(rhs).map(SimDuration)
    }
}

impl SimTime {
    /// Saturating addition (pins at the far-future instant `u64::MAX`).
    pub fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Checked addition; `None` if the instant leaves the timeline.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }
}

// Arithmetic overflow on the virtual timeline always indicates a runaway
// delay computation (e.g. multiplying a latency by a corrupted count), so
// the operators are checked in all build profiles rather than wrapping
// silently in release.

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime + SimDuration overflowed the virtual timeline"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime - SimDuration went before simulation start"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration addition overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration scalar multiplication overflow"),
        )
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn fractional_micros() {
        let d = SimDuration::from_micros_f64(2.42);
        assert_eq!(d.as_nanos(), 2_420);
        assert!((d.as_micros_f64() - 2.42).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!((d * 3).as_nanos(), 30_000);
        assert_eq!((d / 2).as_nanos(), 5_000);
        assert_eq!((d * 0.5).as_nanos(), 5_000);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_causality_violation() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(1500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn duration_add_overflow_panics() {
        let _ = SimDuration::from_nanos(u64::MAX) + SimDuration::from_nanos(1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn duration_mul_overflow_panics() {
        let _ = SimDuration::from_nanos(u64::MAX / 2) * 3;
    }

    #[test]
    #[should_panic(expected = "overflowed the virtual timeline")]
    fn time_add_overflow_panics() {
        let _ = SimTime::from_nanos(u64::MAX) + SimDuration::from_nanos(1);
    }

    #[test]
    fn saturating_and_checked_ops() {
        let max = SimDuration::from_nanos(u64::MAX);
        assert_eq!(max.saturating_add(SimDuration::from_nanos(1)), max);
        assert_eq!(max.saturating_mul(2), max);
        assert_eq!(max.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(max.checked_mul(2), None);
        assert_eq!(
            SimTime::from_nanos(u64::MAX).saturating_add(SimDuration::from_nanos(5)),
            SimTime::from_nanos(u64::MAX)
        );
        assert_eq!(
            SimTime::from_nanos(u64::MAX).checked_add(SimDuration::from_nanos(1)),
            None
        );
        assert_eq!(
            SimTime::from_nanos(3).checked_add(SimDuration::from_nanos(4)),
            Some(SimTime::from_nanos(7))
        );
    }
}
