//! The runtime abstraction: FractOS logic against pluggable engines.
//!
//! Everything above this crate — the network model, Controllers, Processes,
//! device adaptors, services, baselines, and the bench harness — drives the
//! simulation exclusively through the [`Runtime`] trait: actor registration,
//! message posting, the virtual clock, seeded randomness (via [`crate::Ctx`]),
//! metrics, and tracing. Two backends implement it:
//!
//! * [`Sim`] — the single-threaded engine. One global event queue, FIFO at
//!   equal timestamps, bit-exact determinism: the same seed always yields
//!   the identical event trace. This is the default.
//! * [`ShardedSim`](crate::sharded::ShardedSim) — a parallel engine with
//!   one shard per simulated node, synchronized by per-link channel
//!   lookahead (Chandy–Misra–Bryant style; see its module docs).
//!   Deterministic for a fixed seed and shard layout; per-link
//!   traffic counters and application payloads match the single-threaded
//!   engine, while exact event interleavings (and thus latency samples)
//!   may differ.
//!
//! Backend selection is an environment decision, not a code decision: see
//! [`RuntimeKind::from_env`] and [`build_runtime`].

use std::any::Any;

use crate::engine::{Actor, ActorId, Msg, NodeOutage, RunOutcome, Sim, TraceEntry};
use crate::metrics::Metrics;
use crate::span::SpanRecord;
use crate::telemetry::TelemetryEvent;
use crate::time::{SimDuration, SimTime};

/// Engine-neutral simulation driver.
///
/// Object-safe so harnesses hold a `Box<dyn Runtime>`; the generic
/// conveniences ([`post`](RuntimeExt::post),
/// [`with_actor`](RuntimeExt::with_actor)) live on [`RuntimeExt`].
pub trait Runtime {
    /// Registers an actor on simulated node 0.
    fn add_actor(&mut self, name: &str, actor: Box<dyn Actor>) -> ActorId;

    /// Registers an actor placed on a specific simulated node.
    ///
    /// Placement is the unit of parallelism: the sharded backend runs each
    /// node's actors on one shard, so only cross-node messages pay barrier
    /// synchronization. The single-threaded backend ignores placement.
    fn add_actor_on(&mut self, node: usize, name: &str, actor: Box<dyn Actor>) -> ActorId;

    /// Enqueues a pre-boxed message to `dst` at `now + delay` from outside
    /// any actor.
    fn post_boxed(&mut self, delay: SimDuration, dst: ActorId, msg: Msg);

    /// Runs until the event queue drains or an actor stops the simulation.
    fn run(&mut self) -> RunOutcome;

    /// Runs for at most `max_steps` events (the parallel backend may
    /// overshoot by up to one synchronization window; see its docs).
    fn run_with_limit(&mut self, max_steps: u64) -> RunOutcome;

    /// Runs until virtual time exceeds `deadline` or the queue drains.
    fn run_until(&mut self, deadline: SimTime) -> RunOutcome;

    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Total events processed so far.
    fn steps(&self) -> u64;

    /// Number of pending events.
    fn pending(&self) -> usize;

    /// The metric registry (counters and histograms of the whole run).
    fn metrics(&self) -> &Metrics;

    /// Mutable access to the metric registry (harnesses record
    /// run-level samples between runs).
    fn metrics_mut(&mut self) -> &mut Metrics;

    /// The registered name of an actor.
    fn actor_name(&self, id: ActorId) -> &str;

    /// Number of registered actors.
    fn actor_count(&self) -> usize;

    /// Enables trace recording.
    fn enable_trace(&mut self);

    /// Takes the recorded trace, leaving recording enabled.
    ///
    /// Entries are returned in the canonical `(time, actor, label)` order on
    /// every backend, so equal workloads at equal seeds yield equal traces
    /// regardless of engine.
    fn take_trace(&mut self) -> Vec<TraceEntry>;

    /// Enables causal span recording (see [`crate::span`]).
    ///
    /// Off by default; while disabled, recording is a no-op that neither
    /// allocates nor perturbs the RNG stream, so disabled runs behave
    /// bit-identically to builds without the subsystem.
    fn enable_spans(&mut self);

    /// Takes the recorded spans, leaving recording enabled.
    ///
    /// Spans are returned in the canonical `(start, end, actor, ord)` order,
    /// identical across backends for equal `(seed, workload)`.
    fn take_spans(&mut self) -> Vec<SpanRecord>;

    /// Enables telemetry recording with the given virtual-time sampling
    /// period (see [`crate::telemetry`]).
    ///
    /// Off by default; while disabled, recording is a no-op that neither
    /// allocates nor perturbs the RNG stream, so disabled runs behave
    /// bit-identically to builds without the subsystem. The period only
    /// parameterizes the derived window series (and the engine's
    /// self-profiling boundary ticks) — it never schedules events, so it
    /// cannot change what the simulation does.
    fn enable_telemetry(&mut self, period: SimDuration);

    /// The telemetry sampling period, or `None` while the plane is off.
    fn telemetry_period(&self) -> Option<SimDuration>;

    /// Takes the recorded telemetry events, leaving recording enabled.
    ///
    /// Events are returned in the canonical `(time, series, actor, ord)`
    /// order on every backend; window aggregation over them (see
    /// `fractos-obs`) is identical across backends for equal
    /// `(seed, workload)` — engine self-profiling series under the
    /// `runtime.` prefix excepted, as they describe the backend itself.
    fn take_telemetry(&mut self) -> Vec<TelemetryEvent>;

    /// Invokes `f` with the actor's `dyn Any` form between events.
    ///
    /// Object-safe plumbing for [`RuntimeExt::with_actor`]; `f` is called
    /// exactly once.
    fn with_actor_any(&mut self, id: ActorId, f: &mut dyn FnMut(&mut dyn Any));

    /// Installs node-down windows (crash-stop / crash-restart faults).
    ///
    /// While a node is down, events addressed to its actors are discarded
    /// at delivery time — a crashed node's actors stop receiving and its
    /// in-flight messages are lost, bit-identically on both backends (the
    /// decision is a pure function of the delivery time and the receiver's
    /// node). The window is the open interval `(down, up)`, so the kill
    /// notification posted at the crash instant and the reboot posted at
    /// the restart instant are still delivered. An empty list (the
    /// default) leaves the engine bit-identical to builds without the
    /// hook.
    fn set_node_outages(&mut self, outages: Vec<NodeOutage>);

    /// Short backend identifier (`"single"`, `"sharded"`) for logs and
    /// metrics.
    fn backend_name(&self) -> &'static str;
}

/// Generic conveniences over any [`Runtime`] (including `dyn Runtime`).
pub trait RuntimeExt: Runtime {
    /// Enqueues a message to `dst` at `now + delay` from outside any actor.
    fn post(&mut self, delay: SimDuration, dst: ActorId, msg: impl Any + Send) {
        self.post_boxed(delay, dst, Box::new(msg));
    }

    /// Gives temporary typed mutable access to a registered actor between
    /// events (tests and harnesses inspecting actor state after a run).
    ///
    /// # Panics
    ///
    /// Panics if the actor is not of type `T`.
    fn with_actor<T: Actor, R>(&mut self, id: ActorId, f: impl FnOnce(&mut T) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.with_actor_any(id, &mut |any| {
            let t = any
                .downcast_mut::<T>()
                .unwrap_or_else(|| panic!("actor {id} is not the requested type"));
            out = Some((f.take().expect("with_actor_any called twice"))(t));
        });
        out.expect("with_actor_any never invoked the callback")
    }
}

impl<R: Runtime + ?Sized> RuntimeExt for R {}

impl Runtime for Sim {
    fn add_actor(&mut self, name: &str, actor: Box<dyn Actor>) -> ActorId {
        Sim::add_actor(self, name, actor)
    }

    fn add_actor_on(&mut self, node: usize, name: &str, actor: Box<dyn Actor>) -> ActorId {
        // One global queue: placement has no effect on scheduling — it only
        // scopes node-outage (crash) windows.
        Sim::add_actor_on(self, node, name, actor)
    }

    fn post_boxed(&mut self, delay: SimDuration, dst: ActorId, msg: Msg) {
        Sim::post_boxed(self, delay, dst, msg);
    }

    fn run(&mut self) -> RunOutcome {
        Sim::run(self)
    }

    fn run_with_limit(&mut self, max_steps: u64) -> RunOutcome {
        Sim::run_with_limit(self, max_steps)
    }

    fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        Sim::run_until(self, deadline)
    }

    fn now(&self) -> SimTime {
        Sim::now(self)
    }

    fn steps(&self) -> u64 {
        Sim::steps(self)
    }

    fn pending(&self) -> usize {
        Sim::pending(self)
    }

    fn metrics(&self) -> &Metrics {
        Sim::metrics(self)
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        Sim::metrics_mut(self)
    }

    fn actor_name(&self, id: ActorId) -> &str {
        Sim::actor_name(self, id)
    }

    fn actor_count(&self) -> usize {
        Sim::actor_count(self)
    }

    fn enable_trace(&mut self) {
        Sim::enable_trace(self);
    }

    fn take_trace(&mut self) -> Vec<TraceEntry> {
        Sim::take_trace(self)
    }

    fn enable_spans(&mut self) {
        Sim::enable_spans(self);
    }

    fn take_spans(&mut self) -> Vec<SpanRecord> {
        Sim::take_spans(self)
    }

    fn enable_telemetry(&mut self, period: SimDuration) {
        Sim::enable_telemetry(self, period);
    }

    fn telemetry_period(&self) -> Option<SimDuration> {
        Sim::telemetry_period(self)
    }

    fn take_telemetry(&mut self) -> Vec<TelemetryEvent> {
        Sim::take_telemetry(self)
    }

    fn with_actor_any(&mut self, id: ActorId, f: &mut dyn FnMut(&mut dyn Any)) {
        Sim::with_actor_any(self, id, f);
    }

    fn set_node_outages(&mut self, outages: Vec<NodeOutage>) {
        Sim::set_node_outages(self, outages);
    }

    fn backend_name(&self) -> &'static str {
        "single"
    }
}

/// Which engine backs a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Single-threaded engine: one global queue, bit-exact determinism.
    SingleThreaded,
    /// Sharded parallel engine: one shard per node, conservative lookahead.
    Sharded,
}

impl RuntimeKind {
    /// Reads the backend selection from `FRACTOS_RUNTIME`.
    ///
    /// `"sharded"` (or `"parallel"`) selects the sharded engine; anything
    /// else — including the variable being unset — selects the
    /// single-threaded engine, keeping bit-exact determinism the default.
    pub fn from_env() -> Self {
        match std::env::var("FRACTOS_RUNTIME").as_deref() {
            Ok("sharded") | Ok("parallel") => RuntimeKind::Sharded,
            _ => RuntimeKind::SingleThreaded,
        }
    }
}

/// Everything a backend needs to know about the simulated cluster shape.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// RNG seed (equal seeds ⇒ equal behavior per backend).
    pub seed: u64,
    /// Number of simulated nodes (= shards on the parallel backend).
    pub nodes: usize,
    /// Uniform conservative synchronization bound for the sharded backend:
    /// a strict lower bound on the delay of every cross-node message.
    /// Derived from the fabric's minimum inter-node one-way latency
    /// (including its jitter floor). Used for every link when
    /// [`link_lookahead`](RuntimeConfig::link_lookahead) is absent; ignored
    /// by the single-threaded backend.
    pub lookahead: SimDuration,
    /// Per-link lookahead matrix for the sharded backend: entry `[j][i]`
    /// is a strict lower bound on the delay of any message from node `j`
    /// to node `i` (diagonal entries are unused). Lets shards synchronize
    /// against the channel clocks of their actual links — slow (e.g.
    /// cross-rack) links widen peer windows instead of throttling the
    /// whole cluster. Derived by the harness from the topology and
    /// `NetParams` (see `Testbed::runtime_config` in `fractos-core`).
    /// `None` falls back to the uniform `lookahead` on every link.
    pub link_lookahead: Option<Vec<Vec<SimDuration>>>,
    /// Worker-thread override for the sharded backend; `None` means
    /// `min(available cores, shards)`, clamped to at least 2 so parallelism
    /// is exercised even on single-core hosts. Also settable via
    /// `FRACTOS_WORKERS`.
    pub workers: Option<usize>,
}

impl RuntimeConfig {
    /// A config for `nodes` nodes with the given seed and uniform lookahead.
    pub fn new(seed: u64, nodes: usize, lookahead: SimDuration) -> Self {
        RuntimeConfig {
            seed,
            nodes,
            lookahead,
            link_lookahead: None,
            workers: None,
        }
    }

    /// Installs a per-link lookahead matrix (see
    /// [`link_lookahead`](RuntimeConfig::link_lookahead)).
    pub fn with_link_lookahead(mut self, matrix: Vec<Vec<SimDuration>>) -> Self {
        self.link_lookahead = Some(matrix);
        self
    }
}

/// Builds the requested backend.
pub fn build_runtime(kind: RuntimeKind, config: &RuntimeConfig) -> Box<dyn Runtime> {
    match kind {
        RuntimeKind::SingleThreaded => Box::new(Sim::new(config.seed)),
        RuntimeKind::Sharded => Box::new(crate::sharded::ShardedSim::new(config)),
    }
}

/// Builds the backend selected by `FRACTOS_RUNTIME` (single-threaded when
/// unset).
pub fn runtime_from_env(config: &RuntimeConfig) -> Box<dyn Runtime> {
    build_runtime(RuntimeKind::from_env(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Ctx;

    struct Counter(u64);
    impl Actor for Counter {
        fn handle(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {
            self.0 += 1;
        }
    }

    #[test]
    fn sim_behind_trait_object() {
        let mut rt: Box<dyn Runtime> = Box::new(Sim::new(7));
        let id = rt.add_actor_on(0, "c", Box::new(Counter(0)));
        rt.post(SimDuration::from_micros(1), id, ());
        rt.post(SimDuration::from_micros(2), id, ());
        assert_eq!(rt.run(), RunOutcome::Drained);
        assert_eq!(rt.with_actor::<Counter, _>(id, |c| c.0), 2);
        assert_eq!(rt.backend_name(), "single");
        assert_eq!(rt.steps(), 2);
    }

    #[test]
    fn kind_from_env_defaults_single() {
        // Not set in the test environment unless the sharded CI job sets it;
        // accept either but verify parsing is total.
        let _ = RuntimeKind::from_env();
        assert_eq!(
            match "sharded" {
                "sharded" | "parallel" => RuntimeKind::Sharded,
                _ => RuntimeKind::SingleThreaded,
            },
            RuntimeKind::Sharded
        );
    }
}
