//! Runtime lock-order witness for [`Shared`](crate::Shared) handles
//! (mini-lockdep).
//!
//! The static lock-order pass in `fractos-analyze` proves the *may*-hold
//! graph acyclic from source text; this module is its runtime complement:
//! with the `lockdep` feature enabled, every acquisition of a *named*
//! `Shared` handle is recorded against the set of named locks the thread
//! already holds, growing a global class-order graph. Two violations
//! panic immediately, at the acquisition site that completes them:
//!
//! - **re-entry** — acquiring a class the thread already holds. With
//!   `std::sync::Mutex` this would deadlock silently; the witness checks
//!   *before* blocking, so the suite fails with both call sites instead
//!   of hanging.
//! - **inversion** — acquiring `B` while holding `A` after some earlier
//!   acquisition (any thread, any time in the process) took `A` while
//!   holding `B`. This is the classic ABBA deadlock precursor; seeing
//!   both orders at runtime means the deadlock is one unlucky
//!   interleaving away.
//!
//! Classes are the `&'static str` names given at
//! [`Shared::named`](crate::Shared::named); unnamed handles (ad-hoc
//! leaf state that never nests) are not witnessed. The canonical
//! acquisition order for the named substrate classes is documented in
//! [`crate::shared`].
//!
//! The edge graph is cumulative across the whole process so inversions
//! between tests in one binary are still caught; [`reset`] restores a
//! clean slate for tests that intentionally exercise the witness.
//!
//! Everything here is feature-gated debug instrumentation: the default
//! build compiles none of it and `Shared` guards carry no extra state.

use std::collections::BTreeMap;
use std::panic::Location;
use std::sync::{Mutex, OnceLock, PoisonError};

/// One recorded acquisition edge: the first site pair that established it.
#[derive(Debug, Clone, Copy)]
struct EdgeSites {
    /// Where the earlier (held) class was acquired.
    held_at: &'static Location<'static>,
    /// Where the later class was acquired while the earlier was held.
    acquired_at: &'static Location<'static>,
}

#[derive(Default)]
struct State {
    /// Named locks currently held, per thread. Keyed by the formatted
    /// `ThreadId` (the raw id is not `Ord`); entries are pushed on
    /// acquire and removed on guard drop.
    held: BTreeMap<String, Vec<(&'static str, &'static Location<'static>)>>,
    /// Observed order edges `(held, acquired)` with their first witness
    /// sites, cumulative across threads.
    edges: BTreeMap<(&'static str, &'static str), EdgeSites>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

fn thread_key() -> String {
    format!("{:?}", std::thread::current().id())
}

/// Records that the current thread is about to acquire `class` at `site`.
///
/// Must be called *before* the underlying `Mutex::lock` so that a
/// same-class re-entry panics with a diagnostic instead of deadlocking.
///
/// # Panics
///
/// Panics on re-entrant acquisition of a held class or on an acquisition
/// order inverting a previously witnessed edge.
// analyze: lock-primitive
pub fn on_acquire(class: &'static str, site: &'static Location<'static>) {
    let mut st = state().lock().unwrap_or_else(PoisonError::into_inner);
    let key = thread_key();
    let held = st.held.entry(key).or_default().clone();
    for &(h, h_site) in &held {
        if h == class {
            panic!(
                "lockdep: re-entrant acquisition of Shared lock class `{class}` at {site} \
                 (already held since {h_site}); same-handle nesting deadlocks"
            );
        }
    }
    for &(h, h_site) in &held {
        if let Some(rev) = st.edges.get(&(class, h)) {
            panic!(
                "lockdep: lock-order inversion: acquiring `{class}` at {site} while holding \
                 `{h}` (acquired at {h_site}), but `{h}` was previously acquired at \
                 {rev_acq} while holding `{class}` (acquired at {rev_held}); \
                 see the canonical order in fractos_sim::shared",
                rev_acq = rev.acquired_at,
                rev_held = rev.held_at,
            );
        }
        st.edges.entry((h, class)).or_insert(EdgeSites {
            held_at: h_site,
            acquired_at: site,
        });
    }
    st.held.entry(thread_key()).or_default().push((class, site));
}

/// Records that the current thread released a guard of `class`.
///
/// Guards may drop in any order, so the *last* matching entry of the
/// thread's held stack is removed, not necessarily the top.
// analyze: lock-primitive
pub fn on_release(class: &'static str) {
    let mut st = state().lock().unwrap_or_else(PoisonError::into_inner);
    let key = thread_key();
    if let Some(stack) = st.held.get_mut(&key) {
        if let Some(i) = stack.iter().rposition(|&(c, _)| c == class) {
            stack.remove(i);
        }
        if stack.is_empty() {
            st.held.remove(&key);
        }
    }
}

/// Clears all recorded held stacks and order edges (test isolation).
// analyze: lock-primitive
pub fn reset() {
    let mut st = state().lock().unwrap_or_else(PoisonError::into_inner);
    st.held.clear();
    st.edges.clear();
}

/// The witnessed order edges so far, sorted, as `(held, then-acquired)`
/// class pairs. Test/debug API.
// analyze: lock-primitive
pub fn edges() -> Vec<(&'static str, &'static str)> {
    let st = state().lock().unwrap_or_else(PoisonError::into_inner);
    st.edges.keys().copied().collect()
}

#[cfg(test)]
mod tests {
    use crate::Shared;

    /// The lockdep state is process-global, so the scenarios run in one
    /// test to avoid cross-test edge pollution in parallel runs.
    #[test]
    fn witness_records_orders_and_panics_on_violations() {
        super::reset();

        // Consistent nesting: a → b twice, no complaints.
        let a = Shared::named("wa", 1u32);
        let b = Shared::named("wb", 2u32);
        for _ in 0..2 {
            let ga = a.borrow();
            let gb = b.borrow();
            assert_eq!(*ga + *gb, 3);
        }
        assert!(super::edges().contains(&("wa", "wb")));

        // Unnamed handles are not witnessed: inverse nesting is fine.
        let u = Shared::new(0u8);
        {
            let _gu = u.borrow_mut();
            let _ga = a.borrow();
        }

        // Re-entry panics (before deadlocking on the inner lock()).
        let err = std::panic::catch_unwind(|| {
            let _g1 = a.borrow();
            let _g2 = a.borrow();
        })
        .expect_err("re-entrant borrow must panic under lockdep");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("re-entrant"), "got: {msg}");
        super::on_release("wa"); // catch_unwind skipped the guard's pop

        // Inversion panics, naming both sites.
        super::reset();
        {
            let _ga = a.borrow();
            let _gb = b.borrow();
        }
        let err = std::panic::catch_unwind(|| {
            let _gb = b.borrow();
            let _ga = a.borrow();
        })
        .expect_err("inverted order must panic under lockdep");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("inversion"), "got: {msg}");
        super::reset();
    }
}
