//! Property-based tests for the streaming log-linear histogram.
//!
//! The telemetry plane summarizes latency distributions with
//! [`StreamHist`] instead of keeping raw samples, so these pin the
//! accuracy contract the exporters rely on: every quantile the histogram
//! reports lands within one bucket width of the exact nearest-rank value
//! computed from the sorted samples, and merging partial histograms is
//! equivalent to recording everything into one (order-independent, as
//! required for cross-backend determinism).

use proptest::prelude::*;

use fractos_sim::{quantile_sorted, StreamHist};

/// Sample vectors spanning the exact region (`< 64`), the log-linear
/// region and multi-decade mixes, like real latency distributions.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..4096,
            4096u64..1_000_000,
            1_000_000u64..10_000_000_000,
        ],
        1..400,
    )
}

proptest! {
    /// Each reported quantile is within one bucket width of the exact
    /// nearest-rank quantile of the raw samples.
    #[test]
    fn quantiles_match_sorted_reference_within_one_bucket(vs in samples()) {
        let mut hist = StreamHist::new();
        let mut sorted: Vec<f64> = Vec::with_capacity(vs.len());
        for &v in &vs {
            hist.record(v);
            sorted.push(v as f64);
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = quantile_sorted(&sorted, q) as u64;
            let approx = hist.quantile(q);
            let width = StreamHist::bucket_width(exact);
            prop_assert!(
                approx.abs_diff(exact) <= width,
                "q={q}: stream {approx} vs exact {exact} (bucket width {width})"
            );
        }
    }

    /// Values below the exact-region boundary (64) are reproduced exactly.
    #[test]
    fn small_values_are_exact(vs in prop::collection::vec(0u64..64, 1..200)) {
        let mut hist = StreamHist::new();
        let mut sorted: Vec<f64> = vs.iter().map(|&v| v as f64).collect();
        for &v in &vs {
            hist.record(v);
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(hist.quantile(q), quantile_sorted(&sorted, q) as u64);
        }
    }

    /// Merging per-shard partials equals recording the concatenation:
    /// counts, sums, extrema and every bucket agree, independent of how
    /// the samples were split or ordered.
    #[test]
    fn merge_equals_concatenation(
        a in samples(),
        b in samples(),
    ) {
        let mut whole = StreamHist::new();
        for &v in a.iter().chain(&b) {
            whole.record(v);
        }
        let (mut ha, mut hb) = (StreamHist::new(), StreamHist::new());
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        // Merge in both directions: the result must be identical.
        let mut ab = ha.clone();
        ab.merge_from(&hb);
        hb.merge_from(&ha);
        prop_assert_eq!(&ab, &hb);
        prop_assert_eq!(&ab, &whole);
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ab.sum(), whole.sum());
    }
}
