//! Property tests for the simulation engine: total event order, virtual
//! time monotonicity, and bit-for-bit determinism.

use proptest::prelude::*;

use fractos_sim::{Actor, Ctx, Msg, Sim, SimDuration, SimTime};

/// An actor that records its deliveries and randomly fans out messages.
struct Chatter {
    id: usize,
    peers: Vec<fractos_sim::ActorId>,
    fanout_left: u32,
    log: Vec<(SimTime, u64)>,
}

struct Tick(u64);

impl Actor for Chatter {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let Tick(v) = *msg.downcast::<Tick>().expect("Tick");
        self.log.push((ctx.now(), v));
        if self.fanout_left > 0 && !self.peers.is_empty() {
            self.fanout_left -= 1;
            let target = self.peers[(ctx.rng().gen_range(self.peers.len() as u64)) as usize];
            let delay = SimDuration::from_nanos(ctx.rng().gen_range(10_000) + 1);
            ctx.send_after(
                delay,
                target,
                Tick(v.wrapping_mul(31).wrapping_add(self.id as u64)),
            );
        }
    }
}

fn run(seed: u64, actors: usize, seeds: &[u64]) -> (u64, SimTime, Vec<Vec<(SimTime, u64)>>) {
    let mut sim = Sim::new(seed);
    let mut ids = Vec::new();
    for i in 0..actors {
        ids.push(sim.add_actor(
            format!("a{i}"),
            Box::new(Chatter {
                id: i,
                peers: Vec::new(),
                fanout_left: 64,
                log: Vec::new(),
            }),
        ));
    }
    let peer_ids = ids.clone();
    for &id in &ids {
        sim.with_actor::<Chatter, _>(id, |c| c.peers = peer_ids.clone());
    }
    for (i, &s) in seeds.iter().enumerate() {
        sim.post(SimDuration::from_nanos(s % 1_000), ids[i % actors], Tick(s));
    }
    sim.run();
    let steps = sim.steps();
    let end = sim.now();
    let logs = ids
        .iter()
        .map(|&id| sim.with_actor::<Chatter, _>(id, |c| c.log.clone()))
        .collect();
    (steps, end, logs)
}

proptest! {
    /// Same seed + same inputs ⇒ identical step counts, end times and
    /// per-actor delivery logs.
    #[test]
    fn identical_runs_are_bit_identical(
        seed in any::<u64>(),
        actors in 1usize..6,
        seeds in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let a = run(seed, actors, &seeds);
        let b = run(seed, actors, &seeds);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Per-actor delivery timestamps never decrease (virtual time is
    /// monotone from every observer's point of view).
    #[test]
    fn delivery_times_are_monotone(
        seed in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let (_, _, logs) = run(seed, 4, &seeds);
        for log in logs {
            for w in log.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards: {:?}", w);
            }
        }
    }

    /// The RNG stream makes different seeds diverge (sanity against a
    /// constant-stream regression).
    #[test]
    fn different_seeds_usually_diverge(seeds in prop::collection::vec(any::<u64>(), 4..12)) {
        let a = run(1, 3, &seeds);
        let b = run(2, 3, &seeds);
        // Fanout targets are random, so the runs should differ somewhere
        // (equal step counts alone are possible; logs equal is not, except
        // in degenerate tiny cases — allow those).
        if a.0 > 8 {
            prop_assert!(a.2 != b.2 || a.1 != b.1);
        }
    }
}

/// Scale guard: a large event volume must stay roughly linear (no
/// quadratic blow-up in the queue or in downstream consumers).
#[test]
fn engine_handles_large_event_volumes() {
    let t0 = std::time::Instant::now();
    let (steps, _, _) = run(3, 8, &(0..2000u64).collect::<Vec<_>>());
    assert!(steps >= 2000);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "engine too slow: {:?} for {} steps",
        t0.elapsed(),
        steps
    );
}
