//! Property tests for the timing-wheel event queue: random interleavings
//! of pushes and pops must match a `BinaryHeap` reference model exactly —
//! same `(time, seq)` at every pop, same final drain — so swapping the
//! scheduler cannot perturb a single event trace.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use fractos_sim::{EventQueue, SimTime};

/// Reference model: a plain min-heap over `(time, seq)`.
#[derive(Default)]
struct Model(BinaryHeap<Reverse<(SimTime, u64)>>);

impl Model {
    fn push(&mut self, time: SimTime, seq: u64) {
        self.0.push(Reverse((time, seq)));
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.0.pop().map(|Reverse(k)| k)
    }
    fn peek(&self) -> Option<(SimTime, u64)> {
        self.0.peek().map(|&Reverse(k)| k)
    }
}

/// One step of the driver: push an event `delay` ns past the watermark, or
/// pop. Delays cover the wheel's interesting regimes: inside one bucket,
/// within the window, just past it, and far into the overflow heap.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000).prop_map(Op::Push),           // same / adjacent bucket
        (0u64..100_000).prop_map(Op::Push),         // within the window
        (900_000u64..1_300_000).prop_map(Op::Push), // straddles the window edge
        (0u64..20_000_000_000).prop_map(Op::Push),  // deep overflow heap
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

/// Replays `ops` against both the wheel and the model; the watermark
/// mirrors the engines' invariant that nothing is scheduled below the
/// current virtual time.
fn check(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut q = EventQueue::new();
    let mut m = Model::default();
    let mut seq = 0u64;
    let mut watermark = 0u64;
    for o in ops {
        match o {
            Op::Push(delay) => {
                let t = SimTime::from_nanos(watermark + delay);
                q.push(t, seq, seq);
                m.push(t, seq);
                seq += 1;
            }
            Op::Pop => {
                prop_assert_eq!(q.peek_key(), m.peek(), "peek diverged from model");
                let got = q.pop().map(|(t, s, _)| (t, s));
                let want = m.pop();
                prop_assert_eq!(got, want, "pop diverged from model");
                if let Some((t, _)) = got {
                    watermark = t.as_nanos();
                }
            }
        }
        prop_assert_eq!(q.len(), m.0.len());
        prop_assert_eq!(q.is_empty(), m.0.is_empty());
    }
    // Drain: the tail must come out in exactly the model's order too.
    while let Some(want) = m.pop() {
        let got = q.pop().map(|(t, s, _)| (t, s));
        prop_assert_eq!(got, Some(want), "drain diverged from model");
    }
    prop_assert!(q.is_empty());
    prop_assert_eq!(q.peek_key(), None);
    Ok(())
}

proptest! {
    /// Random push/pop interleavings match the heap model step for step.
    #[test]
    fn wheel_matches_heap_model(ops in prop::collection::vec(op(), 1..400)) {
        check(&ops)?;
    }

    /// Same-timestamp bursts (every push lands on one instant) exercise
    /// pure seq-order tie-breaking inside a single bucket.
    #[test]
    fn same_time_bursts_pop_in_seq_order(n in 1usize..200, t in 0u64..2_000_000) {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(t);
        for seq in 0..n as u64 {
            q.push(t, seq, seq);
        }
        for expect in 0..n as u64 {
            let got = q.pop().map(|(pt, s, _)| (pt, s));
            prop_assert_eq!(got, Some((t, expect)));
        }
        prop_assert!(q.is_empty());
    }
}
