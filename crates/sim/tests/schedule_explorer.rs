//! Bounded schedule explorer for the sharded barrier (DPOR-lite).
//!
//! The sharded backend's correctness argument is that the conservative
//! per-link horizon (with the Bellman–Ford channel-clock closure) makes
//! the shard executions of one round *commute*: cross-shard messages only
//! move at the barrier, so any interleaving of a round's shards yields
//! the same behavior. This harness checks that argument exhaustively on
//! tiny topologies instead of trusting the few schedules the OS happens
//! to produce: it drives [`ShardedSim::run_scheduled`] through **every**
//! permutation of every round's active shards and asserts each schedule's
//! trace is byte-identical to the single-threaded engine's.
//!
//! DPOR-lite pruning: rounds with zero or one active shard have nothing
//! to reorder (an idle shard's window is empty, so it commutes with
//! everything) and contribute no branching; only rounds with ≥ 2 active
//! shards are permuted. The round structure itself is learned from an
//! identity-schedule run and re-asserted on every explored schedule, so
//! a schedule-dependent round structure would fail loudly rather than
//! escape enumeration.

use fractos_sim::{
    build_runtime, Actor, ActorId, Ctx, Msg, Runtime, RuntimeConfig, RuntimeExt, RuntimeKind,
    ShardedSim, SimDuration,
};

/// Strict lower bound on every cross-node delay in these workloads.
const LOOKAHEAD: SimDuration = SimDuration::from_nanos(1_000);
/// Per-hop forwarding delay; must be ≥ [`LOOKAHEAD`] on cross-node hops.
const HOP: SimDuration = SimDuration::from_nanos(2_000);
/// Exhaustiveness guard: a workload whose schedule space outgrows this is
/// a harness bug (too many rounds/active shards), not something to
/// silently sample.
const MAX_SCHEDULES: u64 = 10_000;

/// A token carrying its remaining hop count.
struct Hop(u64);

/// Forwards [`Hop`] tokens to `next` after [`HOP`], tracing every hop.
struct Forwarder {
    tag: &'static str,
    next: Option<ActorId>,
}

impl Forwarder {
    fn new(tag: &'static str) -> Self {
        Forwarder { tag, next: None }
    }
}

impl Actor for Forwarder {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let hop = msg.downcast::<Hop>().expect("forwarders only carry Hop");
        ctx.trace(format!("{} hop {}", self.tag, hop.0));
        if hop.0 > 0 {
            let next = self.next.expect("ring linked before start");
            ctx.send_after(HOP, next, Hop(hop.0 - 1));
        }
    }
}

/// Registers a `tag`-labelled ring of forwarders on `nodes` (one actor
/// per entry, entry `i` forwarding to entry `i + 1`) and starts a token
/// with `hops` hops at the first one.
fn ring(rt: &mut dyn Runtime, tag: &'static str, nodes: &[usize], hops: u64) {
    let ids: Vec<ActorId> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| rt.add_actor_on(n, &format!("{tag}{i}"), Box::new(Forwarder::new(tag))))
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let next = ids[(i + 1) % ids.len()];
        rt.with_actor::<Forwarder, _>(id, |f| f.next = Some(next));
    }
    rt.post(SimDuration::ZERO, ids[0], Hop(hops));
}

/// Two nodes, two two-actor rings running in opposite directions — both
/// shards are active every round, so every round branches.
fn crossfire(rt: &mut dyn Runtime) {
    ring(rt, "east", &[0, 1], 8);
    ring(rt, "west", &[1, 0], 8);
}

/// Three nodes, three tokens circling the same ring from staggered
/// starts — all three shards are active every round.
fn triple_ring(rt: &mut dyn Runtime) {
    ring(rt, "t0", &[0, 1, 2], 4);
    ring(rt, "t1", &[1, 2, 0], 4);
    ring(rt, "t2", &[2, 0, 1], 4);
}

/// Canonical rendering of a trace: sorted into the cross-backend
/// `(time, actor, label)` order, one line per entry. Byte-equal strings
/// ⇔ identical traces.
fn canon(mut trace: Vec<fractos_sim::TraceEntry>) -> String {
    trace.sort_by(|a, b| (a.time, a.actor, &a.label).cmp(&(b.time, b.actor, &b.label)));
    let mut out = String::new();
    for e in trace {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

/// The `k`-th permutation of `items` in lexicographic order (Lehmer
/// decode); `k < items.len()!`.
fn nth_permutation(items: &[usize], mut k: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = items.to_vec();
    let mut out = Vec::with_capacity(pool.len());
    for i in (0..pool.len()).rev() {
        let f = factorial(i);
        out.push(pool.remove((k / f) as usize));
        k %= f;
    }
    out
}

/// One sharded run under the schedule that assigns permutation index
/// `digit(round)` to each round; returns the canonical trace and the
/// per-round active-shard log.
fn run_sharded(
    config: &RuntimeConfig,
    build: fn(&mut dyn Runtime),
    digit: &dyn Fn(u64) -> u64,
) -> (String, Vec<Vec<usize>>) {
    let mut sim = ShardedSim::new(config);
    sim.enable_trace();
    build(&mut sim);
    let mut pick = |round: u64, active: &[usize]| {
        nth_permutation(active, digit(round) % factorial(active.len()))
    };
    let (outcome, log) = sim.run_scheduled(&mut pick);
    assert_eq!(outcome, fractos_sim::RunOutcome::Drained);
    (canon(sim.take_trace()), log)
}

/// Exhaustively explores every schedule of `build` on `nodes` nodes and
/// asserts all of them reproduce the single-threaded engine's trace.
fn explore(nodes: usize, build: fn(&mut dyn Runtime)) {
    let config = RuntimeConfig::new(61, nodes, LOOKAHEAD);

    let mut single = build_runtime(RuntimeKind::SingleThreaded, &config);
    single.enable_trace();
    build(single.as_mut());
    assert_eq!(single.run(), fractos_sim::RunOutcome::Drained);
    let want = canon(single.take_trace());
    assert!(!want.is_empty(), "workload must trace something");

    // Identity schedule: learn the round structure.
    let (base_trace, base_log) = run_sharded(&config, build, &|_| 0);
    assert_eq!(
        base_trace, want,
        "identity schedule diverges from the single-threaded engine"
    );

    // Rounds with ≥ 2 active shards are the only branch points.
    let branchy: Vec<(usize, u64)> = base_log
        .iter()
        .enumerate()
        .filter(|(_, active)| active.len() > 1)
        .map(|(r, active)| (r, factorial(active.len())))
        .collect();
    assert!(
        !branchy.is_empty(),
        "workload never has two active shards in a round; nothing explored"
    );
    let total: u64 = branchy.iter().map(|&(_, f)| f).product();
    assert!(
        total <= MAX_SCHEDULES,
        "schedule space too large for exhaustive exploration: {total}"
    );

    // Mixed-radix odometer over the branchy rounds (index 0 was the
    // identity run above).
    for k in 1..total {
        let mut rem = k;
        let mut digits = vec![0u64; base_log.len()];
        for &(r, f) in &branchy {
            digits[r] = rem % f;
            rem /= f;
        }
        let (trace, log) = run_sharded(&config, build, &|round| {
            digits.get(round as usize).copied().unwrap_or(0)
        });
        assert_eq!(
            log, base_log,
            "schedule {k}/{total}: round structure depends on the schedule"
        );
        assert_eq!(
            trace, want,
            "schedule {k}/{total}: trace diverges from the single-threaded engine"
        );
    }
}

#[test]
fn crossfire_two_nodes_all_schedules_match_single_threaded() {
    explore(2, crossfire);
}

#[test]
fn triple_ring_three_nodes_all_schedules_match_single_threaded() {
    explore(3, triple_ring);
}
