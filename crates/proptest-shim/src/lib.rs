//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! this minimal, dependency-free replacement. It implements the API subset
//! the FractOS property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `any::<T>()`, integer-range and tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop_oneof!`, `Just`,
//! `.prop_map`, a tiny `[chars]{m,n}` regex-string strategy, and
//! `ProptestConfig::with_cases` — as seeded random sampling.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs and panics as-is.
//! - **Deterministic by default.** Cases derive from a fixed seed so CI
//!   failures reproduce; set `PROPTEST_SEED` to explore other streams.
//! - **Case count** defaults to 64 (env `PROPTEST_CASES` overrides, and
//!   `ProptestConfig::with_cases` takes precedence).

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG (SplitMix64, same generator family the simulator uses)
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift; bias is irrelevant for test-case sampling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Produces arbitrary values of primitive types (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the full-range strategy for a primitive type.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! any_float {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Uniform in [0, 1); full-range floats are rarely useful for
                // the suite's purposes.
                (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t)
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

any_float!(f32, f64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// String strategy from a `[chars]{m,n}` pattern (the regex subset the
/// test suite uses). Anything else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class_repeat(self).unwrap_or_else(|| {
            panic!("unsupported regex strategy {self:?} (shim supports `[chars]{{m,n}}` only)")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = expand_class(&rest[..close]);
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = rep.split_once(',')?;
    let min = lo.trim().parse().ok()?;
    let max = hi.trim().parse().ok()?;
    if class.is_empty() || min > max {
        return None;
    }
    Some((class, min, max))
}

fn expand_class(class: &str) -> Vec<char> {
    let chars: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// `prop::collection` and `prop::option` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specification for [`vec()`](vec()): an exact length or a range.
        pub struct SizeRange {
            min: usize,
            max: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.end > r.start, "empty vec size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        /// Strategy for `Vec`s of values drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min + 1) as u64;
                let len = self.size.min + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option`s of values drawn from `inner`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `prop::option::of(inner)`: `None` a quarter of the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Error type carried by `prop_assert!` failures inside a property body.
pub struct TestCaseError(pub String);

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one property: draws inputs per case and panics on failure.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner; the seed comes from `PROPTEST_SEED` (default 0).
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        TestRunner { config, seed }
    }

    /// Runs `case` once per configured case with a fresh RNG stream.
    ///
    /// `case` receives the per-case RNG and returns `Err` (via
    /// `prop_assert!`) or panics on failure; either aborts the run with the
    /// case number so the failure reproduces under the same seed.
    pub fn run(&mut self, name: &str, case: impl Fn(&mut TestRng) -> Result<(), TestCaseError>) {
        for i in 0..self.config.cases {
            let mut rng = TestRng::new(self.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            if let Err(e) = case(&mut rng) {
                panic!(
                    "property {name} failed at case {i}/{} (seed {}): {}",
                    self.config.cases, self.seed, e.0
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($arm:expr),+ $(,)? ) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($arm)),+ ])
    };
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(v in 10u64..20, w in 0u8..4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w < 4);
        }

        /// Vec strategies respect both range and exact sizes.
        #[test]
        fn vec_sizes(xs in prop::collection::vec(any::<u32>(), 1..5),
                     ys in prop::collection::vec(any::<u8>(), 3)) {
            prop_assert!((1..5).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 3);
        }

        /// prop_oneof + prop_map + Just compose.
        #[test]
        fn oneof_composes(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            Just(99u64),
        ]) {
            prop_assert!(v < 10 || v == 99);
        }

        /// The regex-subset string strategy matches its pattern.
        #[test]
        fn regex_subset(s in "[a-c.]{0,16}") {
            prop_assert!(s.len() <= 16);
            prop_assert!(s.chars().all(|c| c == '.' || ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = prop::collection::vec(any::<u64>(), 0..8);
        let a: Vec<Vec<u64>> = (0..16)
            .map(|i| strat.generate(&mut crate::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..16)
            .map(|i| strat.generate(&mut crate::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(v in 0u64..10) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
