//! The multi-tier storage stack: an extent-based file-system service over
//! the block-device adaptor (§5 "Storage Stack: File System and Block
//! Device").
//!
//! The FS is an ordinary (untrusted) FractOS Process composed with the
//! block-device adaptor: each file extent is one logical volume, acquired
//! through the adaptor's `create_vol` Request. Clients only ever see the
//! capabilities the FS hands out. Three modes cover the paper's design
//! space:
//!
//! * [`FsMode::Mediated`] — the paper's "FS mode": every read/write moves
//!   data through the FS Process (two network transfers per operation);
//! * [`FsMode::Compose`] — the §3.4 dynamic-composition optimization: the
//!   FS *refines* the block-device Request with the client's buffer and
//!   continuation, so data flows device ↔ client directly while the FS
//!   stays on the control path only;
//! * [`FsMode::Dax`] — the paper's DAX mode: `open` returns the
//!   block-device Requests themselves (read-only opens get only the read
//!   Request), and the FS is bypassed entirely afterwards.

use std::collections::HashMap;

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_core::wire::codes;
use fractos_devices::proto::{imm, imm_at, DevError};

/// FS: create a file. Imms: `[size]`. Caps: `[continuation]`.
/// Reply imms: `[file id, extent size]`; caps as for open (rw).
pub const TAG_FS_CREATE: u64 = 0x0300;

/// FS: open a file. Imms: `[file id, mode (0 = ro, 1 = rw)]`.
/// Caps: `[continuation]`. Reply imms: `[file id, extent size]`; caps:
/// mediated/compose → `[fs read Request, fs write Request]` (write only if
/// rw); DAX → per extent `[blk read Request, (blk write Request)]`.
pub const TAG_FS_OPEN: u64 = 0x0301;

/// FS-mediated/composed read. Imms: `[file (preset), offset, size]`.
/// Caps: `[destination Memory, success Request, error Request]`.
pub const TAG_FS_READ: u64 = 0x0302;

/// FS-mediated/composed write. Imms: `[file (preset), offset, size]`.
/// Caps: `[source Memory, success Request, error Request]`.
pub const TAG_FS_WRITE: u64 = 0x0303;

/// FS: delete a file. Imms: `[file id]`. Caps: `[continuation]`.
/// Selectively revokes every outstanding capability to the file's extents
/// (mediated handles *and* DAX handles alike) and lets the block adaptor
/// reclaim the volumes (§3.5).
pub const TAG_FS_DELETE: u64 = 0x0304;

/// Internal completion continuations the FS hands to the block device.
const TAG_FS_INTERNAL: u64 = 0x0310;

/// Typed FS failure codes.
///
/// A failed operation replies `[code]` imms with *zero* capabilities on the
/// client's continuation (create/open) or error Request (read/write).
/// Success replies always carry at least one capability (handles) or ride
/// the dedicated success Request, so the two shapes cannot be confused.
/// Under an armed fault plan these codes are how the FS degrades instead of
/// hanging: a partitioned block adaptor or an exhausted retry budget
/// surfaces here rather than as a lost continuation.
pub mod fs_err {
    use fractos_core::wire::codes;

    /// Read/write range straddles extents or exceeds the file.
    pub const RANGE: u64 = codes::FSE_RANGE;
    /// Dynamic composition failed (block Request unreachable or revoked).
    pub const COMPOSE: u64 = codes::FSE_COMPOSE;
    /// Staging-buffer setup failed.
    pub const STAGING: u64 = codes::FSE_STAGING;
    /// FS degraded: the block adaptor is unreachable (bootstrap failed or
    /// its Controller is partitioned), so no volumes can be provisioned.
    pub const DEGRADED: u64 = codes::FSE_DEGRADED;
    /// No such file.
    pub const NO_FILE: u64 = codes::FSE_NO_FILE;
    /// Minting an internal continuation or per-file handle failed.
    pub const INTERNAL: u64 = codes::FSE_INTERNAL;
    /// Block-device operation failed.
    pub const IO: u64 = codes::FSE_IO;
}

/// Data-path mode of the storage stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsMode {
    /// All data mediated by the FS Process (the paper's baseline FS mode).
    Mediated,
    /// FS refines block-device Requests with client arguments (§3.4).
    Compose,
    /// Clients get the block-device Requests at open time (§5 DAX).
    Dax,
}

/// Default extent size: one logical volume per extent.
pub const EXTENT_SIZE: u64 = 1 << 20;

struct Extent {
    vol: u64,
    read_req: Cid,
    write_req: Cid,
}

struct FsFile {
    extents: Vec<Extent>,
}

/// In-flight mediated operation. Carries everything needed to *re-issue*
/// the block operation: under a device-fault plan the adaptor may reply
/// with a recoverable typed error ([`DevError::Media`],
/// [`DevError::Integrity`], …) and the FS retries with backoff instead of
/// propagating the first fault to the client.
struct PendingOp {
    client_mem: Cid,
    client_success: Cid,
    client_error: Cid,
    staging_view: Cid,
    staging_slot: usize,
    blk_req: Cid,
    ext_off: u64,
    size: u64,
    is_read: bool,
    attempts: u32,
}

struct StagingBuf {
    cid: Cid,
    busy: bool,
}

/// Pending file-creation state.
struct PendingCreate {
    cont: Cid,
    extents_needed: u64,
    extents: Vec<Extent>,
}

/// The file-system service Process.
pub struct FsService {
    mode: FsMode,
    key: String,
    blk_key: String,
    extent_size: u64,
    files: HashMap<u64, FsFile>,
    next_file: u64,
    create_vol_req: Option<Cid>,
    staging: Vec<StagingBuf>,
    ops: HashMap<u64, PendingOp>,
    creates: HashMap<u64, PendingCreate>,
    next_op: u64,
    /// Completed reads/writes (tests).
    pub completed_ops: u64,
    /// Block operations re-issued after a recoverable device fault (tests
    /// and chaos metrics).
    pub retried_ops: u64,
}

/// Staging buffers held by the FS for mediated transfers.
const FS_STAGING_POOL: usize = 8;

impl FsService {
    /// Creates an FS publishing under `"{key}.create"` / `"{key}.open"`,
    /// backed by the block adaptor published under `"{blk_key}.create_vol"`.
    pub fn new(mode: FsMode, key: &str, blk_key: &str) -> Self {
        FsService {
            mode,
            key: key.to_string(),
            blk_key: blk_key.to_string(),
            extent_size: EXTENT_SIZE,
            files: HashMap::new(),
            next_file: 1,
            create_vol_req: None,
            staging: Vec::new(),
            ops: HashMap::new(),
            creates: HashMap::new(),
            next_op: 0,
            completed_ops: 0,
            retried_ops: 0,
        }
    }

    /// Overrides the extent (= logical volume) size.
    pub fn with_extent_size(mut self, size: u64) -> Self {
        self.extent_size = size;
        self
    }

    /// The data-path mode.
    pub fn mode(&self) -> FsMode {
        self.mode
    }

    /// The backing volume ids of a file, in extent order (test harnesses
    /// pre-populating the database).
    pub fn file_volumes(&self, file: u64) -> Option<Vec<u64>> {
        self.files
            .get(&file)
            .map(|f| f.extents.iter().map(|e| e.vol).collect())
    }

    fn op_token(&mut self) -> u64 {
        let t = self.next_op;
        self.next_op += 1;
        t
    }

    /// Creates an internal continuation Request carrying `[kind, op]` and
    /// passes its cid on. Under an armed fault plan the Controller may be
    /// unable to mint the Request (retry budget exhausted); the callback
    /// then receives the error so callers can fail the pending operation
    /// instead of hanging it.
    fn internal_cont(
        fos: &Fos<Self>,
        kind: u64,
        op: u64,
        k: impl FnOnce(&mut Self, Result<Cid, FosError>, &Fos<Self>) + Send + 'static,
    ) {
        fos.request_create_new(
            TAG_FS_INTERNAL,
            vec![imm(kind), imm(op)],
            vec![],
            move |s, res, fos| match res {
                SyscallResult::NewCid(cid) => k(s, Ok(cid), fos),
                SyscallResult::Err(e) => k(s, Err(e), fos),
                _ => k(s, Err(FosError::WrongObjectKind), fos),
            },
        );
    }

    /// Acquires a free staging slot, growing the pool when all are busy
    /// (the prototype sizes its bounce pool generously; running out must
    /// degrade to allocation, not to an error).
    fn grab_staging(
        &mut self,
        fos: &Fos<Self>,
        k: impl FnOnce(&mut Self, Result<usize, FosError>, &Fos<Self>) + Send + 'static,
    ) {
        if let Some(i) = self.staging.iter().position(|s| !s.busy) {
            self.staging[i].busy = true;
            k(self, Ok(i), fos);
            return;
        }
        let size = self.extent_size;
        let addr = fos.mem_alloc(size);
        fos.memory_create(addr, size, Perms::RW, move |s: &mut Self, res, fos| {
            let SyscallResult::NewCid(cid) = res else {
                // Growing the pool failed (e.g. the Controller link is
                // down): surface the failure instead of dropping the op.
                k(s, Err(FosError::ControllerUnreachable), fos);
                return;
            };
            s.staging.push(StagingBuf { cid, busy: true });
            let i = s.staging.len() - 1;
            k(s, Ok(i), fos);
        });
    }

    // ---- file creation ------------------------------------------------

    fn on_create(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let (Some(size), Some(&cont)) = (imm_at(&req.imms, 0), req.caps.first()) else {
            return;
        };
        let Some(create_vol) = self.create_vol_req else {
            // Bootstrap never reached the block adaptor: the FS is up but
            // degraded — creates fail typed instead of hanging the client.
            fos.reply_via(cont, vec![imm(fs_err::DEGRADED)], vec![]);
            return;
        };
        let n = size.div_ceil(self.extent_size).max(1);
        let op = self.op_token();
        self.creates.insert(
            op,
            PendingCreate {
                cont,
                extents_needed: n,
                extents: Vec::new(),
            },
        );
        self.request_extent(fos, create_vol, op);
    }

    fn request_extent(&mut self, fos: &Fos<Self>, create_vol: Cid, op: u64) {
        let extent_size = self.extent_size;
        FsService::internal_cont(fos, codes::FSI_EXTENT_READY, op, move |s, cont, fos| {
            let Ok(cont) = cont else {
                s.fail_create(op, fos);
                return;
            };
            fos.request_derive(
                create_vol,
                vec![imm(extent_size)],
                vec![cont],
                move |s: &mut Self, res, fos| {
                    let SyscallResult::NewCid(cid) = res else {
                        s.fail_create(op, fos);
                        return;
                    };
                    fos.request_invoke(cid, move |s: &mut Self, res, fos| {
                        if !res.is_ok() {
                            s.fail_create(op, fos);
                        }
                    });
                },
            );
        });
    }

    /// Fails a pending create with a typed reply, releasing any extents
    /// already provisioned.
    fn fail_create(&mut self, op: u64, fos: &Fos<Self>) {
        let Some(pending) = self.creates.remove(&op) else {
            return;
        };
        for e in pending.extents {
            fos.call_ignore(Syscall::CapRevoke { cid: e.read_req });
            fos.call_ignore(Syscall::CapRevoke { cid: e.write_req });
        }
        fos.reply_via(pending.cont, vec![imm(fs_err::DEGRADED)], vec![]);
    }

    /// A `create_vol` completion arrived: `[vol]` imm plus
    /// `[read, write]` Requests.
    fn on_extent_ready(&mut self, op: u64, req: &IncomingRequest, fos: &Fos<Self>) {
        // Reply imms: [kind, op, vol]; caps: [read, write].
        let vol = imm_at(&req.imms, 2).unwrap_or(0);
        let (read_req, write_req) = (req.caps[0], req.caps[1]);
        let Some(pending) = self.creates.get_mut(&op) else {
            return;
        };
        pending.extents.push(Extent {
            vol,
            read_req,
            write_req,
        });
        if (pending.extents.len() as u64) < pending.extents_needed {
            let Some(create_vol) = self.create_vol_req else {
                self.fail_create(op, fos);
                return;
            };
            self.request_extent(fos, create_vol, op);
            return;
        }
        // `get_mut` above proved the entry exists.
        let Some(pending) = self.creates.remove(&op) else {
            return;
        };
        let file_id = self.next_file;
        self.next_file += 1;
        self.files.insert(
            file_id,
            FsFile {
                extents: pending.extents,
            },
        );
        self.reply_handles(file_id, true, pending.cont, fos);
    }

    /// Replies to a create/open with the mode-appropriate handles.
    fn reply_handles(&mut self, file_id: u64, writable: bool, cont: Cid, fos: &Fos<Self>) {
        let extent_size = self.extent_size;
        match self.mode {
            FsMode::Mediated | FsMode::Compose => {
                // Mint per-file FS read/write Requests with the file preset.
                fos.request_create_new(
                    TAG_FS_READ,
                    vec![imm(file_id)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let SyscallResult::NewCid(fs_read) = res else {
                            fos.reply_via(cont, vec![imm(fs_err::INTERNAL)], vec![]);
                            return;
                        };
                        if writable {
                            fos.request_create_new(
                                TAG_FS_WRITE,
                                vec![imm(file_id)],
                                vec![],
                                move |_s: &mut Self, res, fos| {
                                    let SyscallResult::NewCid(fs_write) = res else {
                                        fos.reply_via(cont, vec![imm(fs_err::INTERNAL)], vec![]);
                                        return;
                                    };
                                    fos.reply_via(
                                        cont,
                                        vec![imm(file_id), imm(extent_size)],
                                        vec![fs_read, fs_write],
                                    );
                                },
                            );
                        } else {
                            fos.reply_via(
                                cont,
                                vec![imm(file_id), imm(extent_size)],
                                vec![fs_read],
                            );
                        }
                    },
                );
            }
            FsMode::Dax => {
                // Hand out the block-device Requests themselves, per extent
                // (read-only opens withhold the write Requests — the
                // "access permissions according to the file's open mode").
                let Some(file) = self.files.get(&file_id) else {
                    fos.reply_via(cont, vec![imm(fs_err::NO_FILE)], vec![]);
                    return;
                };
                let mut caps = Vec::new();
                for e in &file.extents {
                    caps.push(e.read_req);
                    if writable {
                        caps.push(e.write_req);
                    }
                }
                fos.reply_via(cont, vec![imm(file_id), imm(extent_size)], caps);
            }
        }
    }

    fn on_delete(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let (Some(file_id), Some(&cont)) = (imm_at(&req.imms, 0), req.caps.first()) else {
            return;
        };
        let Some(file) = self.files.remove(&file_id) else {
            fos.reply_via(cont, vec![imm(0)], vec![]);
            return;
        };
        // Revoking the FS's handles invalidates the very objects every
        // delegated copy points at — immediate, selective revocation with
        // no delegation tracking (§3.5). The adaptor's monitor drains and
        // the volumes are reclaimed.
        let n = file.extents.len() as u64;
        for e in file.extents {
            fos.call_ignore(Syscall::CapRevoke { cid: e.read_req });
            fos.call_ignore(Syscall::CapRevoke { cid: e.write_req });
        }
        fos.reply_via(cont, vec![imm(n)], vec![]);
    }

    fn on_open(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let (Some(file_id), Some(mode), Some(&cont)) =
            (imm_at(&req.imms, 0), imm_at(&req.imms, 1), req.caps.first())
        else {
            return;
        };
        if !self.files.contains_key(&file_id) {
            fos.reply_via(cont, vec![imm(fs_err::NO_FILE)], vec![]);
            return;
        }
        self.reply_handles(file_id, mode == 1, cont, fos);
    }

    // ---- reads and writes ----------------------------------------------

    /// Translates a file offset into `(extent, in-extent offset)`, failing
    /// if the operation straddles extents.
    fn locate(&self, file: u64, offset: u64, size: u64) -> Option<(usize, u64)> {
        let f = self.files.get(&file)?;
        let idx = (offset / self.extent_size) as usize;
        let off = offset % self.extent_size;
        if idx >= f.extents.len() || off + size > self.extent_size {
            return None;
        }
        Some((idx, off))
    }

    fn on_read_write(&mut self, req: IncomingRequest, fos: &Fos<Self>, is_read: bool) {
        let (Some(file), Some(offset), Some(size)) = (
            imm_at(&req.imms, 0),
            imm_at(&req.imms, 1),
            imm_at(&req.imms, 2),
        ) else {
            return;
        };
        let [client_mem, success, error] = req.caps[..] else {
            return;
        };
        let Some((ext_idx, ext_off)) = self.locate(file, offset, size) else {
            fos.reply_via(error, vec![imm(fs_err::RANGE)], vec![]);
            return;
        };
        let f = &self.files[&file];
        let blk_req = if is_read {
            f.extents[ext_idx].read_req
        } else {
            f.extents[ext_idx].write_req
        };

        match self.mode {
            FsMode::Compose => {
                // §3.4 dynamic composition: refine the block-device Request
                // with the *client's* buffer and continuations. Data and
                // completion flow device ↔ client directly.
                self.completed_ops += 1;
                fos.request_derive(
                    blk_req,
                    vec![imm(ext_off), imm(size)],
                    vec![client_mem, success, error],
                    move |_s, res, fos| {
                        let SyscallResult::NewCid(cid) = res else {
                            fos.reply_via(error, vec![imm(fs_err::COMPOSE)], vec![]);
                            return;
                        };
                        fos.request_invoke(cid, move |_, res, fos| {
                            if !res.is_ok() {
                                fos.reply_via(error, vec![imm(fs_err::COMPOSE)], vec![]);
                            }
                        });
                    },
                );
            }
            FsMode::Mediated | FsMode::Dax => {
                // (A DAX client normally bypasses the FS, but the mediated
                // path still works for it.)
                self.grab_staging(fos, move |s: &mut Self, slot, fos| {
                    let Ok(slot) = slot else {
                        fos.reply_via(error, vec![imm(fs_err::STAGING)], vec![]);
                        return;
                    };
                    s.mediated_io(
                        slot, blk_req, ext_off, size, client_mem, success, error, is_read, fos,
                    );
                });
            }
        }
    }

    /// Mediated data path once a staging slot is held.
    #[allow(clippy::too_many_arguments)]
    fn mediated_io(
        &mut self,
        slot: usize,
        blk_req: Cid,
        ext_off: u64,
        size: u64,
        client_mem: Cid,
        success: Cid,
        error: Cid,
        is_read: bool,
        fos: &Fos<Self>,
    ) {
        let staging_cid = self.staging[slot].cid;
        let op = self.op_token();
        // A sized view of the staging buffer for this operation.
        fos.call(
            Syscall::MemoryDiminish {
                cid: staging_cid,
                offset: 0,
                size,
                drop_perms: Perms::NONE,
            },
            move |s: &mut Self, res, fos| {
                let SyscallResult::NewCid(view) = res else {
                    s.staging[slot].busy = false;
                    fos.reply_via(error, vec![imm(fs_err::STAGING)], vec![]);
                    return;
                };
                s.ops.insert(
                    op,
                    PendingOp {
                        client_mem,
                        client_success: success,
                        client_error: error,
                        staging_view: view,
                        staging_slot: slot,
                        blk_req,
                        ext_off,
                        size,
                        is_read,
                        attempts: 0,
                    },
                );
                if is_read {
                    // Device → staging, then staging → client.
                    Self::start_blk(op, blk_req, ext_off, size, view, fos);
                } else {
                    // Client → staging, then staging → device.
                    Self::start_write(op, blk_req, ext_off, size, client_mem, view, fos);
                }
            },
        );
    }

    /// Mints fresh internal success/failure continuations and fires the
    /// block operation for op `op`. Re-entered on every retry.
    fn start_blk(op: u64, blk_req: Cid, ext_off: u64, size: u64, view: Cid, fos: &Fos<Self>) {
        FsService::internal_cont(fos, codes::FSI_BLK_OK, op, move |s, done, fos| {
            let Ok(done) = done else {
                s.finish_op(op, false, fos);
                return;
            };
            FsService::internal_cont(fos, codes::FSI_BLK_ERR, op, move |s, fail, fos| {
                let Ok(fail) = fail else {
                    s.finish_op(op, false, fos);
                    return;
                };
                Self::invoke_blk(blk_req, ext_off, size, view, done, fail, op, fos);
            });
        });
    }

    /// Write data path: pull the client's payload into the staging view,
    /// then commit it to the device. A corrupted pull (integrity envelope
    /// mismatch on the copy) is retried — the client's buffer still holds
    /// the payload, so re-pulling re-stamps it.
    fn start_write(
        op: u64,
        blk_req: Cid,
        ext_off: u64,
        size: u64,
        client_mem: Cid,
        view: Cid,
        fos: &Fos<Self>,
    ) {
        fos.memory_copy(client_mem, view, move |s: &mut Self, res, fos| match res {
            SyscallResult::Ok => Self::start_blk(op, blk_req, ext_off, size, view, fos),
            SyscallResult::Err(FosError::IntegrityViolation) => {
                s.retry_or_fail(op, Some(DevError::Integrity.code()), fos)
            }
            _ => s.finish_op(op, false, fos),
        });
    }

    /// Re-issues op `op` after an exponential backoff if the fault is
    /// recoverable and budget remains (`RetryPolicy::fs_io_retries`, with
    /// the control plane's doubling RTO as the backoff); otherwise fails
    /// the op typed. This is the error-continuation recovery loop: the
    /// device adaptor translated a fault into a typed error invocation,
    /// and the FS — not the client — decides whether it is worth another
    /// attempt.
    fn retry_or_fail(&mut self, op: u64, code: Option<u64>, fos: &Fos<Self>) {
        let recoverable = code
            .and_then(DevError::from_code)
            .is_some_and(|e| e.is_recoverable());
        let retry = fos.retry_policy();
        let Some(p) = self.ops.get_mut(&op) else {
            return;
        };
        if !recoverable || p.attempts >= retry.fs_io_retries {
            self.finish_op(op, false, fos);
            return;
        }
        p.attempts += 1;
        let backoff = retry.rto(p.attempts - 1);
        let (blk_req, ext_off, size, view) = (p.blk_req, p.ext_off, p.size, p.staging_view);
        let (is_read, client_mem) = (p.is_read, p.client_mem);
        self.retried_ops += 1;
        fos.sleep(backoff, move |_s: &mut Self, fos| {
            if is_read {
                Self::start_blk(op, blk_req, ext_off, size, view, fos);
            } else {
                Self::start_write(op, blk_req, ext_off, size, client_mem, view, fos);
            }
        });
    }

    /// Derives the block-device Request with the staging view and internal
    /// continuations, then fires it. Any failure fails op `op` typed.
    #[allow(clippy::too_many_arguments)]
    fn invoke_blk(
        blk_req: Cid,
        ext_off: u64,
        size: u64,
        view: Cid,
        done: Cid,
        fail: Cid,
        op: u64,
        fos: &Fos<Self>,
    ) {
        fos.request_derive(
            blk_req,
            vec![imm(ext_off), imm(size)],
            vec![view, done, fail],
            move |s: &mut Self, res, fos| {
                let SyscallResult::NewCid(cid) = res else {
                    s.finish_op(op, false, fos);
                    return;
                };
                fos.request_invoke(cid, move |s: &mut Self, res, fos| {
                    if !res.is_ok() {
                        s.finish_op(op, false, fos);
                    }
                });
            },
        );
    }

    /// Completes a mediated op: for reads, copy staging → client first.
    /// `code` is the device adaptor's typed error code on failure; a
    /// recoverable one re-issues the operation instead of failing it.
    fn on_blk_done(&mut self, op: u64, ok: bool, code: Option<u64>, fos: &Fos<Self>) {
        let Some(p) = self.ops.get(&op) else { return };
        if !ok {
            self.retry_or_fail(op, code, fos);
            return;
        }
        if p.is_read {
            let (view, client_mem) = (p.staging_view, p.client_mem);
            fos.memory_copy(view, client_mem, move |s: &mut Self, res, fos| {
                match res {
                    SyscallResult::Ok => s.finish_op(op, true, fos),
                    // Corrupted in flight: re-read the extent (the
                    // device's copy is intact) and re-deliver.
                    SyscallResult::Err(FosError::IntegrityViolation) => {
                        s.retry_or_fail(op, Some(DevError::Integrity.code()), fos)
                    }
                    _ => s.finish_op(op, false, fos),
                }
            });
        } else {
            self.finish_op(op, true, fos);
        }
    }

    fn finish_op(&mut self, op: u64, ok: bool, fos: &Fos<Self>) {
        let Some(p) = self.ops.remove(&op) else {
            return;
        };
        self.staging[p.staging_slot].busy = false;
        fos.call_ignore(Syscall::CapRevoke {
            cid: p.staging_view,
        });
        if ok {
            self.completed_ops += 1;
            fos.reply_via(p.client_success, vec![imm(p.size)], vec![]);
        } else {
            fos.reply_via(p.client_error, vec![imm(fs_err::IO)], vec![]);
        }
    }
}

impl Service for FsService {
    fn on_start(&mut self, fos: &Fos<Self>) {
        // Staging pool.
        for _ in 0..FS_STAGING_POOL {
            let addr = fos.mem_alloc(EXTENT_SIZE);
            fos.memory_create(addr, EXTENT_SIZE, Perms::RW, |s: &mut Self, res, _| {
                if let SyscallResult::NewCid(cid) = res {
                    s.staging.push(StagingBuf { cid, busy: false });
                }
            });
        }
        // Bootstrap: fetch the block adaptor's create_vol Request, then
        // publish our own endpoints.
        let key = self.key.clone();
        let blk_key = format!("{}.create_vol", self.blk_key);
        fos.call(
            Syscall::KvGet { key: blk_key },
            move |s: &mut Self, res, fos| {
                // Under faults the KvGet can fail: come up degraded
                // (creates reply `fs_err::DEGRADED`) rather than not at all.
                if let SyscallResult::NewCid(cid) = res {
                    s.create_vol_req = Some(cid);
                }
                let create_key = format!("{key}.create");
                let open_key = format!("{key}.open");
                fos.request_create_new(TAG_FS_CREATE, vec![], vec![], move |_s, res, fos| {
                    if let SyscallResult::NewCid(c) = res {
                        fos.kv_put(&create_key, c, |_, _, _| {});
                    }
                });
                fos.request_create_new(TAG_FS_OPEN, vec![], vec![], move |_s, res, fos| {
                    if let SyscallResult::NewCid(o) = res {
                        fos.kv_put(&open_key, o, |_, _, _| {});
                    }
                });
                let delete_key = format!("{key}.delete");
                fos.request_create_new(TAG_FS_DELETE, vec![], vec![], move |_s, res, fos| {
                    if let SyscallResult::NewCid(del) = res {
                        fos.kv_put(&delete_key, del, |_, _, _| {});
                    }
                });
            },
        );
    }

    // analyze: wire-decode
    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        match req.tag {
            TAG_FS_CREATE => self.on_create(req, fos),
            TAG_FS_OPEN => self.on_open(req, fos),
            TAG_FS_DELETE => self.on_delete(req, fos),
            TAG_FS_READ => self.on_read_write(req, fos, true),
            TAG_FS_WRITE => self.on_read_write(req, fos, false),
            TAG_FS_INTERNAL => {
                // Imms: [kind, op, ...]; on failure the adaptor's typed
                // `DevError` code rides at index 2.
                let (Some(kind), Some(op)) = (imm_at(&req.imms, 0), imm_at(&req.imms, 1)) else {
                    return;
                };
                match kind {
                    codes::FSI_EXTENT_READY => self.on_extent_ready(op, &req, fos),
                    codes::FSI_BLK_OK => self.on_blk_done(op, true, None, fos),
                    codes::FSI_BLK_ERR => self.on_blk_done(op, false, imm_at(&req.imms, 2), fos),
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
