//! Multi-stage streaming pipeline used by the service-composition
//! experiment (§6.2, Fig 8).
//!
//! Each stage is a FractOS Process with one data buffer. Its Request takes
//! a destination Memory and a next Request: the stage moves its buffer's
//! bytes to the destination and invokes the continuation verbatim. The same
//! stage service serves all three drivers:
//!
//! * **star** (centralized app & data): the client copies data to the
//!   stage, invokes it, and receives data back — two data transfers per
//!   stage (`fractos-baselines`);
//! * **fast-star** (centralized control, direct data): the stage forwards
//!   its data directly to the next stage's buffer but control returns to
//!   the client each hop (`fractos-baselines`);
//! * **chain** (fully distributed): the client pre-wires the whole Request
//!   chain and the stages hand off data *and* control peer-to-peer — this
//!   module's [`ChainDriver`].

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_devices::proto::{imm, imm_at};
use fractos_sim::SimTime;

/// Stage Request. Imms: `[size]`. Caps: `[destination Memory,
/// next Request]`.
pub const TAG_PIPE_STAGE: u64 = 0x0500;

/// Client reply tag.
pub const TAG_PIPE_REPLY: u64 = 0x0501;

/// One pipeline stage Process.
pub struct PipelineStage {
    /// Stage index (for registry keys `pipe.{i}.req` / `pipe.{i}.buf`).
    pub index: usize,
    /// Buffer capacity.
    pub capacity: u64,
    buf_cid: Option<Cid>,
    /// Requests forwarded (tests).
    pub forwarded: u64,
    /// Data transfers re-attempted after a transient/integrity failure.
    pub retries: u64,
    /// Hand-offs that proceeded without a verified transfer (retry budget
    /// exhausted or continuation unreachable) — the chain still completes.
    pub degraded: u64,
}

impl PipelineStage {
    /// Creates a stage with a `capacity`-byte buffer.
    pub fn new(index: usize, capacity: u64) -> Self {
        PipelineStage {
            index,
            capacity,
            buf_cid: None,
            forwarded: 0,
            retries: 0,
            degraded: 0,
        }
    }

    /// Copies the stage buffer view into `dst`, retrying a failed transfer
    /// (e.g. an in-flight integrity violation) up to the policy's
    /// `stage_retries` times with doubling backoff, then hands control to
    /// `next` either way — a stalled stage must not wedge the whole chain
    /// (§3.6: faults become error continuations, not hangs).
    fn copy_and_forward(attempt: u32, view: Cid, dst: Cid, next: Cid, fos: &Fos<Self>) {
        fos.memory_copy(view, dst, move |s: &mut Self, res, fos| {
            let retry = fos.retry_policy();
            if res != SyscallResult::Ok && attempt < retry.stage_retries {
                s.retries += 1;
                let backoff = retry.rto(attempt);
                fos.sleep(backoff, move |_s: &mut Self, fos| {
                    Self::copy_and_forward(attempt + 1, view, dst, next, fos);
                });
                return;
            }
            if res != SyscallResult::Ok {
                s.degraded += 1;
            }
            fos.call_ignore(Syscall::CapRevoke { cid: view });
            fos.request_invoke(next, |s: &mut Self, res, _| {
                if !res.is_ok() {
                    s.degraded += 1;
                }
            });
        });
    }
}

impl Service for PipelineStage {
    fn on_start(&mut self, fos: &Fos<Self>) {
        let index = self.index;
        let capacity = self.capacity;
        let addr = fos.mem_alloc(capacity);
        fos.memory_create(addr, capacity, Perms::RW, move |s: &mut Self, res, fos| {
            let SyscallResult::NewCid(buf) = res else {
                return;
            };
            s.buf_cid = Some(buf);
            fos.kv_put(&format!("pipe.{index}.buf"), buf, |_, res, _| {
                debug_assert!(res.is_ok());
            });
            fos.request_create_new(TAG_PIPE_STAGE, vec![], vec![], move |_s, res, fos| {
                fos.kv_put(&format!("pipe.{index}.req"), res.cid(), |_, res, _| {
                    debug_assert!(res.is_ok());
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_PIPE_STAGE {
            return;
        }
        let Some(size) = imm_at(&req.imms, 0) else {
            return;
        };
        let [dst, next] = req.caps[..] else { return };
        let Some(buf) = self.buf_cid else { return };
        self.forwarded += 1;
        // Move `size` bytes of our buffer to the destination, then hand
        // control to whatever Request we were given — we do not know or
        // care who provides it (§3.4 encapsulation).
        fos.call(
            Syscall::MemoryDiminish {
                cid: buf,
                offset: 0,
                size,
                drop_perms: Perms::NONE,
            },
            move |_s: &mut Self, res, fos| {
                let SyscallResult::NewCid(view) = res else {
                    return;
                };
                Self::copy_and_forward(0, view, dst, next, fos);
            },
        );
    }
}

/// Drives the fully distributed (chain) pipeline and records latencies.
pub struct ChainDriver {
    /// Number of stages.
    pub stages: usize,
    /// Bytes streamed per iteration.
    pub size: u64,
    /// Iterations to run.
    pub iterations: u64,
    stage_reqs: Vec<Cid>,
    stage_bufs: Vec<Cid>,
    client_buf: Option<Cid>,
    started_at: SimTime,
    /// Completed iteration latencies.
    pub latencies: Vec<fractos_sim::SimDuration>,
    remaining: u64,
}

impl ChainDriver {
    /// Creates a driver for `stages` stages streaming `size` bytes.
    pub fn new(stages: usize, size: u64, iterations: u64) -> Self {
        ChainDriver {
            stages,
            size,
            iterations,
            stage_reqs: Vec::new(),
            stage_bufs: Vec::new(),
            client_buf: None,
            started_at: SimTime::ZERO,
            latencies: Vec::new(),
            remaining: iterations,
        }
    }

    fn fetch_handles(&mut self, i: usize, fos: &Fos<Self>) {
        let stages = self.stages;
        if i == stages {
            // All handles in: allocate the client sink buffer and start.
            let size = self.size;
            let addr = fos.mem_alloc(size);
            fos.memory_create(addr, size, Perms::RW, |s: &mut Self, res, fos| {
                s.client_buf = Some(res.cid());
                s.run_iteration(fos);
            });
            return;
        }
        fos.call(
            Syscall::KvGet {
                key: format!("pipe.{i}.req"),
            },
            move |s: &mut Self, res, fos| {
                s.stage_reqs.push(res.cid());
                fos.call(
                    Syscall::KvGet {
                        key: format!("pipe.{i}.buf"),
                    },
                    move |s: &mut Self, res, fos| {
                        s.stage_bufs.push(res.cid());
                        s.fetch_handles(i + 1, fos);
                    },
                );
            },
        );
    }

    /// Builds the Request chain back to front, then fires stage 0.
    fn run_iteration(&mut self, fos: &Fos<Self>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.started_at = fos.now();
        let size = self.size;
        // Final continuation: the client's reply Request.
        fos.request_create_new(
            TAG_PIPE_REPLY,
            vec![],
            vec![],
            move |s: &mut Self, res, fos| {
                let reply = res.cid();
                s.build_link(s.stages, reply, size, fos);
            },
        );
    }

    /// Recursively derives stage `i-1`'s Request so that its destination is
    /// stage `i`'s buffer (or the client sink) and its continuation is the
    /// already-built tail.
    fn build_link(&mut self, i: usize, next: Cid, size: u64, fos: &Fos<Self>) {
        if i == 0 {
            // Chain complete: invoke the head.
            fos.request_invoke(next, |_, res, _| debug_assert!(res.is_ok()));
            return;
        }
        let dst = if i == self.stages {
            self.client_buf.expect("allocated")
        } else {
            self.stage_bufs[i]
        };
        let base = self.stage_reqs[i - 1];
        fos.request_derive(
            base,
            vec![imm(size)],
            vec![dst, next],
            move |s: &mut Self, res, fos| {
                let SyscallResult::NewCid(link) = res else {
                    return;
                };
                s.build_link(i - 1, link, size, fos);
            },
        );
    }
}

impl Service for ChainDriver {
    fn on_start(&mut self, fos: &Fos<Self>) {
        self.fetch_handles(0, fos);
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_PIPE_REPLY {
            return;
        }
        self.latencies
            .push(fos.now().duration_since(self.started_at));
        self.run_iteration(fos);
    }
}

/// Drives the distributed *fork/join* pattern of §3.4: all stages are
/// invoked concurrently, each streaming its buffer into a disjoint region
/// of the client's sink and invoking the shared join continuation; the
/// iteration completes when the last stage reports in. The same Request
/// primitives that build chains build this data-flow shape — no new
/// mechanism (§3.4: "RPCs, distributed pipelines, or distributed fork/join
/// and data-flow patterns").
pub struct ForkJoinDriver {
    /// Number of stages forked per iteration.
    pub stages: usize,
    /// Bytes each stage streams.
    pub size: u64,
    /// Iterations to run.
    pub iterations: u64,
    stage_reqs: Vec<Cid>,
    sink: Option<Cid>,
    sink_views: Vec<Cid>,
    pending: usize,
    started_at: SimTime,
    remaining: u64,
    /// Completed iteration latencies.
    pub latencies: Vec<fractos_sim::SimDuration>,
}

impl ForkJoinDriver {
    /// Creates a driver forking `stages` transfers of `size` bytes each.
    pub fn new(stages: usize, size: u64, iterations: u64) -> Self {
        ForkJoinDriver {
            stages,
            size,
            iterations,
            stage_reqs: Vec::new(),
            sink: None,
            sink_views: Vec::new(),
            pending: 0,
            started_at: SimTime::ZERO,
            remaining: iterations,
            latencies: Vec::new(),
        }
    }

    fn fetch_handles(&mut self, i: usize, fos: &Fos<Self>) {
        if i == self.stages {
            // One sink buffer with a disjoint writable view per stage.
            let total = self.size * self.stages as u64;
            let addr = fos.mem_alloc(total);
            fos.memory_create(addr, total, Perms::RW, |s: &mut Self, res, fos| {
                let SyscallResult::NewCid(sink) = res else {
                    return;
                };
                s.sink = Some(sink);
                s.carve_views(0, fos);
            });
            return;
        }
        fos.call(
            Syscall::KvGet {
                key: format!("pipe.{i}.req"),
            },
            move |s: &mut Self, res, fos| {
                s.stage_reqs.push(res.cid());
                s.fetch_handles(i + 1, fos);
            },
        );
    }

    fn carve_views(&mut self, i: usize, fos: &Fos<Self>) {
        if i == self.stages {
            self.run_iteration(fos);
            return;
        }
        let sink = self.sink.expect("allocated");
        let size = self.size;
        fos.call(
            Syscall::MemoryDiminish {
                cid: sink,
                offset: i as u64 * size,
                size,
                drop_perms: Perms::NONE,
            },
            move |s: &mut Self, res, fos| {
                let SyscallResult::NewCid(view) = res else {
                    return;
                };
                s.sink_views.push(view);
                s.carve_views(i + 1, fos);
            },
        );
    }

    fn run_iteration(&mut self, fos: &Fos<Self>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.started_at = fos.now();
        self.pending = self.stages;
        // One shared join continuation; every stage invokes it on
        // completion.
        fos.request_create_new(
            TAG_PIPE_REPLY,
            vec![],
            vec![],
            move |s: &mut Self, res, fos| {
                let join = res.cid();
                for i in 0..s.stages {
                    let base = s.stage_reqs[i];
                    let dst = s.sink_views[i];
                    fos.request_derive(base, vec![imm(s.size)], vec![dst, join], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    });
                }
            },
        );
    }
}

impl Service for ForkJoinDriver {
    fn on_start(&mut self, fos: &Fos<Self>) {
        self.fetch_handles(0, fos);
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_PIPE_REPLY {
            return;
        }
        self.pending -= 1;
        if self.pending == 0 {
            self.latencies
                .push(fos.now().duration_since(self.started_at));
            self.run_iteration(fos);
        }
    }
}
