//! The end-to-end face-verification application (§5, evaluated in §6.5).
//!
//! The frontend receives a batch of photos plus claimed identities, reads
//! the reference photos for those identities from disaggregated storage
//! *directly into GPU memory*, runs the face-verification kernel, copies
//! the match results back, and answers the client. With FractOS the data
//! path is a single transfer (NVMe → GPU) and the control path is the chain
//! client → frontend → storage → GPU → frontend → client (five control
//! messages instead of the baseline's eight, §6.5).
//!
//! Pipeline per request (`a`–`e` as in Fig 2):
//!
//! 1. client invokes the frontend's verify Request, passing its query
//!    buffer (a Memory capability) and a reply continuation;
//! 2. the frontend copies the queries into the first half of a pooled GPU
//!    input buffer (third-party transfer client → GPU);
//! 3. the frontend invokes the storage read Request, refined with a view of
//!    the second half of the GPU buffer as destination and the pre-derived
//!    GPU kernel-invocation Request as success continuation;
//! 4. the storage adaptor moves the reference images NVMe → GPU and invokes
//!    the kernel Request verbatim;
//! 5. the kernel writes per-pair distances; its success continuation
//!    returns control to the frontend, which copies the results out and
//!    invokes the client's reply continuation.

use std::collections::VecDeque;

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_devices::proto::{imm, imm_at, DevError};
use fractos_sim::{SimDuration, SimTime};

use crate::matcher::{synth_face, MATCH_THRESHOLD};

/// Frontend: verify a batch. Imms: `[batch, first id]`.
/// Caps: `[query Memory (batch × img bytes), reply Request]`.
/// Reply imms: `[distances (batch bytes)]`.
pub const TAG_FV_VERIFY: u64 = 0x0400;

/// Frontend-internal: GPU kernel completion for slot.
const TAG_FV_GPU_DONE: u64 = 0x0401;

/// Frontend-internal: pipeline error for slot.
const TAG_FV_ERR: u64 = 0x0402;

/// Frontend-internal: bootstrap replies.
const TAG_FV_BOOT: u64 = 0x0403;

/// Client: reply continuation.
pub const TAG_FV_REPLY: u64 = 0x0404;

/// Configuration of the face-verification frontend.
#[derive(Debug, Clone)]
pub struct FvConfig {
    /// Bytes per image.
    pub img_bytes: u64,
    /// Largest batch a pooled buffer must fit.
    pub max_batch: u64,
    /// Number of pooled GPU buffers (concurrent requests in flight).
    pub pool: usize,
    /// Registry key of the GPU adaptor (`"{gpu}.init"`).
    pub gpu_key: String,
    /// Registry key this frontend publishes its verify Request under.
    pub verify_key: String,
    /// Registry key of the database read Request (published by the harness
    /// after creating the DB file through the FS).
    pub db_read_key: String,
    /// When set, results are not returned inline: the frontend chains the
    /// GPU output into a *composed* FS write (§3.4) on the output SSD, and
    /// the storage device invokes the client's continuation directly — the
    /// full Fig 2 ring (steps d–e).
    pub store_results: bool,
    /// Registry key of the output file's write Request (used when
    /// `store_results` is set).
    pub out_write_key: String,
}

impl Default for FvConfig {
    fn default() -> Self {
        FvConfig {
            img_bytes: 4096,
            max_batch: 64,
            pool: 4,
            gpu_key: "gpu".into(),
            verify_key: "fv.verify".into(),
            db_read_key: "fv.db_read".into(),
            store_results: false,
            out_write_key: "fv.out_write".into(),
        }
    }
}

struct GpuSlot {
    in_mem: Cid,
    out_mem: Cid,
    busy: bool,
    cache: Option<SlotCache>,
}

/// Pre-derived per-slot artifacts, reused across requests of the same
/// batch size (the paper's pre-allocated-pool optimization: only the
/// storage offset is refined per request).
struct SlotCache {
    batch: u64,
    /// Writable view over the query half of the GPU input buffer.
    in_a: Cid,
    /// Writable view over the reference half (storage writes into it).
    in_b: Cid,
    /// Fully pre-derived kernel-invocation Request (input view, output
    /// view and continuations preset); invoked verbatim by storage.
    kernel_req: Cid,
    /// Error continuation.
    err: Cid,
    /// Frontend-local result buffer.
    out_local_addr: u64,
    /// Memory capability over the local result buffer.
    out_local: Cid,
    /// Readable view over the GPU output buffer.
    out_view: Cid,
}

struct InFlight {
    batch: u64,
    reply: Cid,
    /// The client's query buffer and id window — kept so a recoverable
    /// device fault can re-run the whole storage → GPU stage chain.
    query_mem: Cid,
    first_id: u64,
    attempts: u32,
}

/// The frontend Process of the application.
pub struct FaceVerifyFrontend {
    cfg: FvConfig,
    // Bootstrap state.
    alloc_req: Option<Cid>,
    load_req: Option<Cid>,
    invoke_req: Option<Cid>,
    db_read_req: Option<Cid>,
    out_write_req: Option<Cid>,
    slots: Vec<GpuSlot>,
    boot_allocs: usize,
    /// In-flight request per slot.
    inflight: Vec<Option<InFlight>>,
    /// Requests queued while every slot is busy.
    backlog: VecDeque<IncomingRequest>,
    /// Whether bootstrap finished and the verify Request is published.
    pub ready: bool,
    /// Served requests (tests/benches).
    pub served: u64,
    /// Stage chains re-run after a recoverable device fault (chaos tests).
    pub retried: u64,
}

impl FaceVerifyFrontend {
    /// Creates the frontend.
    pub fn new(cfg: FvConfig) -> Self {
        let pool = cfg.pool;
        FaceVerifyFrontend {
            cfg,
            alloc_req: None,
            load_req: None,
            invoke_req: None,
            db_read_req: None,
            out_write_req: None,
            slots: Vec::new(),
            boot_allocs: 0,
            inflight: (0..pool).map(|_| None).collect(),
            backlog: VecDeque::new(),
            ready: false,
            served: 0,
            retried: 0,
        }
    }

    fn in_buf_size(&self) -> u64 {
        // Query half plus reference half.
        2 * self.cfg.max_batch * self.cfg.img_bytes
    }

    fn boot_cont(fos: &Fos<Self>, phase: u64, extra: u64) {
        fos.request_create_new(
            TAG_FV_BOOT,
            vec![imm(phase), imm(extra)],
            vec![],
            move |s: &mut Self, res, fos| {
                let cont = res.cid();
                s.boot_step(phase, extra, cont, fos);
            },
        );
    }

    /// Bootstrap driver: each phase creates its continuation first, then
    /// fires the RPC that will invoke it.
    fn boot_step(&mut self, phase: u64, extra: u64, cont: Cid, fos: &Fos<Self>) {
        match phase {
            // Phase 0: gpu.init.
            0 => {
                let key = format!("{}.init", self.cfg.gpu_key);
                fos.call(Syscall::KvGet { key }, move |_s, res, fos| {
                    let init = res.cid();
                    fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    });
                });
            }
            // Phase 1+2k: allocate input buffer for slot k; 2+2k: output.
            p if p >= 1 && p < 1 + 2 * self.cfg.pool as u64 => {
                let alloc = self.alloc_req.expect("init done");
                let size = if (p - 1) % 2 == 0 {
                    self.in_buf_size()
                } else {
                    self.cfg.max_batch
                };
                let _ = extra;
                fos.request_derive(alloc, vec![imm(size)], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                });
            }
            // Final phase: load the kernel.
            p if p == 1 + 2 * self.cfg.pool as u64 => {
                let load = self.load_req.expect("init done");
                fos.request_derive(
                    load,
                    vec![imm(crate::matcher::FACE_VERIFY_KERNEL)],
                    vec![cont],
                    |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    },
                );
            }
            _ => unreachable!("bootstrap phase {phase}"),
        }
    }

    fn on_boot_reply(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap_or(u64::MAX);
        match phase {
            0 => {
                self.alloc_req = Some(req.caps[0]);
                self.load_req = Some(req.caps[1]);
                Self::boot_cont(fos, 1, 0);
            }
            p if p >= 1 && p < 1 + 2 * self.cfg.pool as u64 => {
                let mem = req.caps[0];
                if (p - 1) % 2 == 0 {
                    self.slots.push(GpuSlot {
                        in_mem: mem,
                        out_mem: Cid(u32::MAX),
                        busy: false,
                        cache: None,
                    });
                } else {
                    self.slots.last_mut().expect("input first").out_mem = mem;
                    self.boot_allocs += 1;
                }
                Self::boot_cont(fos, p + 1, 0);
            }
            p if p == 1 + 2 * self.cfg.pool as u64 => {
                self.invoke_req = Some(req.caps[0]);
                // Fetch the database read Request, publish verify, done.
                let db_key = self.cfg.db_read_key.clone();
                let verify_key = self.cfg.verify_key.clone();
                fos.call(
                    Syscall::KvGet { key: db_key },
                    move |s: &mut Self, res, fos| {
                        s.db_read_req = Some(res.cid());
                        fos.request_create_new(
                            TAG_FV_VERIFY,
                            vec![],
                            vec![],
                            move |_s: &mut Self, res, fos| {
                                let v = res.cid();
                                fos.kv_put(&verify_key, v, |s: &mut Self, res, _| {
                                    debug_assert!(res.is_ok());
                                    s.ready = true;
                                });
                            },
                        );
                    },
                );
            }
            _ => {}
        }
    }

    fn on_verify(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let Some(slot) = self.slots.iter().position(|s| !s.busy) else {
            self.backlog.push_back(req);
            return;
        };
        let (Some(batch), Some(first_id)) = (imm_at(&req.imms, 0), imm_at(&req.imms, 1)) else {
            return;
        };
        let [query_mem, reply] = req.caps[..] else {
            return;
        };
        if batch > self.cfg.max_batch {
            fos.reply_via(reply, vec![Payload::empty()], vec![]);
            return;
        }
        self.slots[slot].busy = true;
        self.inflight[slot] = Some(InFlight {
            batch,
            reply,
            query_mem,
            first_id,
            attempts: 0,
        });

        if self.slots[slot]
            .cache
            .as_ref()
            .is_some_and(|c| c.batch == batch)
        {
            self.issue(slot, first_id, query_mem, fos);
        } else {
            self.build_cache(slot, batch, first_id, query_mem, fos);
        }
    }

    /// Builds the per-slot cache of views and derived Requests for `batch`
    /// (one-time cost per (slot, batch); the paper pre-allocates GPU
    /// buffers and refines only per-request arguments).
    fn build_cache(
        &mut self,
        slot: usize,
        batch: u64,
        first_id: u64,
        query_mem: Cid,
        fos: &Fos<Self>,
    ) {
        // Drop stale cached handles (best effort).
        if let Some(old) = self.slots[slot].cache.take() {
            for cid in [old.in_a, old.in_b, old.kernel_req, old.out_view] {
                fos.call_ignore(Syscall::CapRevoke { cid });
            }
        }
        let img = self.cfg.img_bytes;
        let in_mem = self.slots[slot].in_mem;
        let out_mem = self.slots[slot].out_mem;
        let invoke_base = self.invoke_req.expect("ready");

        // Query-half view.
        fos.call(
            Syscall::MemoryDiminish {
                cid: in_mem,
                offset: 0,
                size: batch * img,
                drop_perms: Perms::NONE,
            },
            move |_s: &mut Self, res, fos| {
                let SyscallResult::NewCid(in_a) = res else { return };
                // Reference-half view.
                fos.call(
                    Syscall::MemoryDiminish {
                        cid: in_mem,
                        offset: batch * img,
                        size: batch * img,
                        drop_perms: Perms::NONE,
                    },
                    move |_s: &mut Self, res, fos| {
                        let SyscallResult::NewCid(in_b) = res else { return };
                        // Whole-input view the kernel reads.
                        fos.call(
                            Syscall::MemoryDiminish {
                                cid: in_mem,
                                offset: 0,
                                size: 2 * batch * img,
                                drop_perms: Perms::WRITE,
                            },
                            move |_s: &mut Self, res, fos| {
                                let SyscallResult::NewCid(k_in) = res else { return };
                                // Output view.
                                fos.call(
                                    Syscall::MemoryDiminish {
                                        cid: out_mem,
                                        offset: 0,
                                        size: batch,
                                        drop_perms: Perms::NONE,
                                    },
                                    move |_s: &mut Self, res, fos| {
                                        let SyscallResult::NewCid(out_view) = res else {
                                            return;
                                        };
                                        // Frontend continuations.
                                        fos.request_create_new(
                                            TAG_FV_GPU_DONE,
                                            vec![imm(slot as u64)],
                                            vec![],
                                            move |_s: &mut Self, res, fos| {
                                                let done = res.cid();
                                                fos.request_create_new(
                                                    TAG_FV_ERR,
                                                    vec![imm(slot as u64)],
                                                    vec![],
                                                    move |_s: &mut Self, res, fos| {
                                                        let err = res.cid();
                                                        // Fully pre-derive
                                                        // the kernel Request.
                                                        fos.request_derive(
                                                            invoke_base,
                                                            vec![imm(batch), imm(img)],
                                                            vec![k_in, out_view, done, err],
                                                            move |s: &mut Self, res, fos| {
                                                                let SyscallResult::NewCid(
                                                                    kernel_req,
                                                                ) = res
                                                                else {
                                                                    s.fail_slot(slot, fos);
                                                                    return;
                                                                };
                                                                let out_local_addr =
                                                                    fos.mem_alloc(
                                                                        s.cfg.max_batch,
                                                                    );
                                                                fos.memory_create(
                                                                    out_local_addr,
                                                                    s.cfg.max_batch,
                                                                    Perms::RW,
                                                                    move |s: &mut Self,
                                                                          res,
                                                                          fos| {
                                                                        let SyscallResult::NewCid(out_local) = res else {
                                                                            s.fail_slot(slot, fos);
                                                                            return;
                                                                        };
                                                                        s.slots[slot].cache =
                                                                            Some(SlotCache {
                                                                                batch,
                                                                                in_a,
                                                                                in_b,
                                                                                kernel_req,
                                                                                err,
                                                                                out_local_addr,
                                                                                out_local,
                                                                                out_view,
                                                                            });
                                                                        s.issue(
                                                                            slot, first_id,
                                                                            query_mem, fos,
                                                                        );
                                                                    },
                                                                );
                                                            },
                                                        );
                                                    },
                                                );
                                            },
                                        );
                                    },
                                );
                            },
                        );
                    },
                );
            },
        );
    }

    /// Fast path (steps 2–3): third-party copy of the queries into the GPU
    /// buffer, then chain storage → GPU → us via one refined read Request.
    fn issue(&mut self, slot: usize, first_id: u64, query_mem: Cid, fos: &Fos<Self>) {
        let cache = self.slots[slot].cache.as_ref().expect("cache built");
        let (in_a, in_b, kernel_req, err) = (cache.in_a, cache.in_b, cache.kernel_req, cache.err);
        let batch = cache.batch;
        let img = self.cfg.img_bytes;
        let db_read = self.db_read_req.expect("ready");
        fos.memory_copy(query_mem, in_a, move |s: &mut Self, res, fos| {
            match res {
                SyscallResult::Ok => {}
                // The query payload was corrupted in flight: the client's
                // buffer is intact, so re-run the chain.
                SyscallResult::Err(FosError::IntegrityViolation) => {
                    s.retry_or_fail_slot(slot, Some(DevError::Integrity.code()), fos);
                    return;
                }
                _ => {
                    s.fail_slot(slot, fos);
                    return;
                }
            }
            fos.request_derive(
                db_read,
                vec![imm(first_id * img), imm(batch * img)],
                vec![in_b, kernel_req, err],
                move |s: &mut Self, res, fos| {
                    let SyscallResult::NewCid(read) = res else {
                        s.fail_slot(slot, fos);
                        return;
                    };
                    fos.request_invoke(read, |_, res, _| debug_assert!(res.is_ok()));
                },
            );
        });
    }

    /// Step 5: kernel finished. Either pull the distances and answer the
    /// client inline, or — in `store_results` mode — chain the GPU output
    /// straight into the composed output-FS write, whose success
    /// continuation *is* the client's reply (the output SSD reads from the
    /// GPU and answers the application directly, Fig 2 steps d–e).
    fn on_gpu_done(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let Some(slot) = imm_at(&req.imms, 0).map(|s| s as usize) else {
            return;
        };
        if self.inflight[slot].is_none() {
            return;
        }
        if let Some(out_write) = self.out_write_req {
            let cache = self.slots[slot].cache.as_ref().expect("cache built");
            let (out_view, err) = (cache.out_view, cache.err);
            let batch = self.inflight[slot].as_ref().expect("checked").batch;
            let Some(inflight) = self.inflight[slot].take() else {
                return;
            };
            let reply = inflight.reply;
            // Distinct output region per slot so concurrent requests do
            // not clobber each other.
            let offset = slot as u64 * self.cfg.max_batch;
            self.slots[slot].busy = false;
            self.served += 1;
            fos.request_derive(
                out_write,
                vec![imm(offset), imm(batch)],
                vec![out_view, reply, err],
                move |s: &mut Self, res, fos| {
                    if let SyscallResult::NewCid(w) = res {
                        fos.request_invoke(w, |_, res, _| debug_assert!(res.is_ok()));
                    }
                    if let Some(queued) = s.backlog.pop_front() {
                        s.on_verify(queued, fos);
                    }
                },
            );
            return;
        }
        let cache = self.slots[slot].cache.as_ref().expect("cache built");
        let (out_view, out_local, out_addr) =
            (cache.out_view, cache.out_local, cache.out_local_addr);
        let batch = self.inflight[slot].as_ref().expect("checked").batch;
        fos.memory_copy(out_view, out_local, move |s: &mut Self, res, fos| {
            match res {
                SyscallResult::Ok => {}
                // The distances were corrupted on the way out of GPU
                // memory; re-run the chain to recompute them.
                SyscallResult::Err(FosError::IntegrityViolation) => {
                    s.retry_or_fail_slot(slot, Some(DevError::Integrity.code()), fos);
                    return;
                }
                _ => {
                    s.fail_slot(slot, fos);
                    return;
                }
            }
            let distances = fos.mem_read(out_addr, 0, batch).unwrap_or_default();
            let Some(inflight) = s.inflight[slot].take() else {
                return;
            };
            s.slots[slot].busy = false;
            s.served += 1;
            fos.reply_via(inflight.reply, vec![distances], vec![]);
            // Admit one queued request, if any.
            if let Some(queued) = s.backlog.pop_front() {
                s.on_verify(queued, fos);
            }
        });
    }

    /// Decides what to do with a typed error for `slot`'s in-flight
    /// request: a recoverable device fault ([`DevError::Media`],
    /// [`DevError::Launch`], [`DevError::Integrity`], …) re-runs the whole
    /// storage → GPU stage chain after a doubling backoff, up to the
    /// policy's `fv_retries` attempts; anything else (or an exhausted
    /// budget) degrades to an empty reply via
    /// [`FaceVerifyFrontend::fail_slot`].
    fn retry_or_fail_slot(&mut self, slot: usize, code: Option<u64>, fos: &Fos<Self>) {
        let recoverable = code
            .and_then(DevError::from_code)
            .is_some_and(|e| e.is_recoverable());
        let retry = fos.retry_policy();
        let Some(inflight) = self.inflight[slot].as_mut() else {
            return;
        };
        if !recoverable || inflight.attempts >= retry.fv_retries {
            self.fail_slot(slot, fos);
            return;
        }
        inflight.attempts += 1;
        let (first_id, query_mem) = (inflight.first_id, inflight.query_mem);
        let backoff = retry.rto(inflight.attempts - 1);
        self.retried += 1;
        fos.sleep(backoff, move |s: &mut Self, fos| {
            // The slot stays busy and its cache intact across the retry.
            if s.inflight[slot].is_some() {
                s.issue(slot, first_id, query_mem, fos);
            }
        });
    }

    fn fail_slot(&mut self, slot: usize, fos: &Fos<Self>) {
        if let Some(inflight) = self.inflight[slot].take() {
            self.slots[slot].busy = false;
            fos.reply_via(inflight.reply, vec![Payload::empty()], vec![]);
        }
        if let Some(queued) = self.backlog.pop_front() {
            self.on_verify(queued, fos);
        }
    }
}

impl Service for FaceVerifyFrontend {
    fn on_start(&mut self, fos: &Fos<Self>) {
        Self::boot_cont(fos, 0, 0);
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        match req.tag {
            TAG_FV_BOOT => self.on_boot_reply(req, fos),
            TAG_FV_VERIFY => self.on_verify(req, fos),
            TAG_FV_GPU_DONE => self.on_gpu_done(req, fos),
            TAG_FV_ERR => {
                // Preset imms: [slot]; the device adaptor appends its
                // typed `DevError` code at index 1.
                if let Some(slot) = imm_at(&req.imms, 0) {
                    let code = imm_at(&req.imms, 1);
                    self.retry_or_fail_slot(slot as usize, code, fos);
                }
            }
            _ => {}
        }
    }
}

/// One measured request of the load-generating client.
#[derive(Debug, Clone, Copy)]
pub struct FvSample {
    /// When the request was issued.
    pub issued: SimTime,
    /// When the reply arrived.
    pub completed: SimTime,
    /// Whether every pair matched (queries are noisy captures of the
    /// claimed identities, so they all should).
    pub all_matched: bool,
}

impl FvSample {
    /// Request latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.duration_since(self.issued)
    }
}

/// The load-generating client of the face-verification service.
pub struct FvClient {
    /// Bytes per image (must match the frontend).
    pub img_bytes: u64,
    /// Batch size per request.
    pub batch: u64,
    /// Total requests to issue.
    pub requests: u64,
    /// Requests kept in flight.
    pub in_flight: u64,
    /// Identity range to draw from.
    pub id_range: u64,
    /// When the frontend runs in `store_results` mode, replies arrive from
    /// the output storage device and carry a byte count instead of the
    /// distances; set this so samples count as verified on receipt.
    pub expect_stored: bool,
    /// Registry key of the frontend's verify Request.
    pub verify_key: String,
    verify_req: Option<Cid>,
    issued: u64,
    seq: u64,
    pending_issue: Vec<(u64, SimTime)>,
    /// Reusable registered query buffers: `(addr, Memory cid)` free list.
    buffers: Vec<(u64, Cid)>,
    /// Buffers lent out per in-flight seq.
    lent: Vec<(u64, (u64, Cid))>,
    /// Completed samples.
    pub samples: Vec<FvSample>,
    /// Raw reply payloads (the distance bytes), in completion order. These
    /// are cheap-clone [`Payload`] handles into the delivered immediates,
    /// kept so harnesses can assert end-to-end bytes across backends.
    pub replies: Vec<Payload>,
}

impl FvClient {
    /// Creates a client issuing `requests` batches of `batch` images.
    pub fn new(img_bytes: u64, batch: u64, requests: u64, in_flight: u64) -> Self {
        FvClient {
            img_bytes,
            batch,
            requests,
            in_flight: in_flight.max(1),
            id_range: 256,
            expect_stored: false,
            verify_key: "fv.verify".into(),
            verify_req: None,
            issued: 0,
            seq: 0,
            pending_issue: Vec::new(),
            buffers: Vec::new(),
            lent: Vec::new(),
            samples: Vec::new(),
            replies: Vec::new(),
        }
    }

    fn issue_one(&mut self, fos: &Fos<Self>) {
        if self.issued >= self.requests {
            return;
        }
        // Each top-level verification request roots its own span tree.
        fos.trace_root();
        self.issued += 1;
        let seq = self.seq;
        self.seq += 1;
        let verify = self.verify_req.expect("bootstrapped");
        let batch = self.batch;
        let img = self.img_bytes;
        // Deterministic but scattered id windows (random reads, like the
        // paper's workload — caches at any tier stay cold).
        let first_id = (seq * 53 + 17) % (self.id_range.saturating_sub(batch).max(1));

        // Build the query images: noisy captures of the claimed ids.
        let mut data = Vec::with_capacity((batch * img) as usize);
        for i in 0..batch {
            data.extend(synth_face(first_id + i, img as usize, seq + 1));
        }
        let issued_at = fos.now();
        self.pending_issue.push((seq, issued_at));
        fos.telemetry_count("app.fv.issued", 1);
        fos.telemetry_gauge("app.fv.inflight", self.pending_issue.len() as u64);

        // Reuse a registered buffer when one is free (clients keep a small
        // pool, like the frontend's GPU buffer pool).
        if let Some((addr, query_mem)) = self.buffers.pop() {
            fos.mem_write(addr, 0, &data).expect("query upload");
            self.lent.push((seq, (addr, query_mem)));
            self.send_verify(verify, batch, first_id, seq, query_mem, fos);
            return;
        }
        let addr = fos.mem_alloc(batch * img);
        fos.mem_write(addr, 0, &data).expect("query upload");
        fos.memory_create(
            addr,
            batch * img,
            Perms::RW,
            move |s: &mut Self, res, fos| {
                let SyscallResult::NewCid(query_mem) = res else {
                    return;
                };
                s.lent.push((seq, (addr, query_mem)));
                s.send_verify(verify, batch, first_id, seq, query_mem, fos);
            },
        );
    }

    fn send_verify(
        &mut self,
        verify: Cid,
        batch: u64,
        first_id: u64,
        seq: u64,
        query_mem: Cid,
        fos: &Fos<Self>,
    ) {
        fos.request_create_new(
            TAG_FV_REPLY,
            vec![imm(seq)],
            vec![],
            move |_s: &mut Self, res, fos| {
                let reply = res.cid();
                fos.request_derive(
                    verify,
                    vec![imm(batch), imm(first_id)],
                    vec![query_mem, reply],
                    |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    },
                );
            },
        );
    }
}

impl Service for FvClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.call(
            Syscall::KvGet {
                key: self.verify_key.clone(),
            },
            |s: &mut Self, res, fos| {
                s.verify_req = Some(res.cid());
                for _ in 0..s.in_flight.min(s.requests) {
                    s.issue_one(fos);
                }
            },
        );
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_FV_REPLY {
            return;
        }
        let seq = imm_at(&req.imms, 0).unwrap_or(0);
        let issued = self
            .pending_issue
            .iter()
            .position(|(s, _)| *s == seq)
            .map(|i| self.pending_issue.swap_remove(i).1)
            .unwrap_or(SimTime::ZERO);
        // The appended immediate holds the distance bytes.
        let distances = req.imms.get(1).cloned().unwrap_or_default();
        if let Some(i) = self.lent.iter().position(|(s, _)| *s == seq) {
            let (_, buf) = self.lent.swap_remove(i);
            self.buffers.push(buf);
        }
        let all_matched = !distances.is_empty() && distances.iter().all(|&d| d < MATCH_THRESHOLD);
        self.replies.push(distances.clone());
        let sample = FvSample {
            issued,
            completed: fos.now(),
            all_matched,
        };
        fos.telemetry_sample("app.fv.latency_ns", sample.latency().as_nanos());
        fos.telemetry_gauge("app.fv.inflight", self.pending_issue.len() as u64);
        self.samples.push(sample);
        self.issue_one(fos);
    }
}
