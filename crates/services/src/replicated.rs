//! Replicated service instances with deterministic failover (§3.6).
//!
//! FractOS translates node failures into typed errors, but an application
//! that wants to *survive* them needs a second instance to talk to. This
//! module provides the minimal replication layer the recovery experiments
//! exercise:
//!
//! * [`ReplicaWorker`] — one service instance; publishes its work Request
//!   under `{name}.{i}.req` and answers invocations after a fixed service
//!   time;
//! * [`deploy_replicated`] — places N instances on given (endpoint,
//!   Controller) pairs and registers each with the cluster directory's
//!   service registry;
//! * [`FailoverClient`] — routes every request through
//!   `Directory::service_route` (first registered instance with no
//!   standing death verdict), and on a typed failure or reply timeout
//!   re-routes and re-dispatches, recording the re-home/re-dispatch
//!   milestones the MTTR attribution consumes.
//!
//! Failover is deterministic: routing is a pure function of registration
//! order and the directory's verdict state, and every timestamp comes from
//! the simulator, so recovery timelines replay bit-identically from
//! `(seed, plan)` on both backends.

use fractos_cap::Cid;
use fractos_core::directory::ServiceInstance;
use fractos_core::prelude::*;
use fractos_core::Directory;
use fractos_devices::proto::{imm, imm_at};
use fractos_sim::{Shared, SimDuration, SimTime};

/// Worker Request tag. Imms: `[attempt id]`. Caps: `[reply Request]`.
pub const TAG_REPLICA_WORK: u64 = 0x0700;

/// Client reply tag. Imms (baked at creation): `[attempt id]`.
pub const TAG_REPLICA_REPLY: u64 = 0x0701;

/// Default client-side reply deadline. Generous against the retransmit
/// budget (`RetryPolicy::syscall_timeout` = 5 ms) so the typed §3.6 verdict normally
/// arrives first and the timer is only the backstop for replies lost
/// after the invoke was acknowledged.
pub const REPLY_TIMEOUT: SimDuration = SimDuration::from_micros(2_000);

/// Redispatch attempts per logical request before the client gives up and
/// records the request as resolved-by-verdict.
pub const FAILOVER_ATTEMPTS: u32 = 10;

/// One replicated service instance.
pub struct ReplicaWorker {
    /// Service name (registry keys are `{name}.{index}.req`).
    pub name: String,
    /// Instance index in registration order.
    pub index: usize,
    /// Simulated service time per request.
    pub service: SimDuration,
    /// Requests served (tests).
    pub served: u64,
    /// Set once the work Request is published.
    pub ready: bool,
}

impl ReplicaWorker {
    /// Creates instance `index` of `name` with the given service time.
    pub fn new(name: &str, index: usize, service: SimDuration) -> Self {
        ReplicaWorker {
            name: name.to_string(),
            index,
            service,
            served: 0,
            ready: false,
        }
    }
}

impl Service for ReplicaWorker {
    fn on_start(&mut self, fos: &Fos<Self>) {
        let key = format!("{}.{}.req", self.name, self.index);
        fos.request_create_new(TAG_REPLICA_WORK, vec![], vec![], move |_s, res, fos| {
            fos.kv_put(&key, res.cid(), |s: &mut Self, res, _| {
                debug_assert!(res.is_ok());
                s.ready = true;
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_REPLICA_WORK {
            return;
        }
        let [reply] = req.caps[..] else { return };
        self.served += 1;
        let service = self.service;
        fos.sleep(service, move |_s: &mut Self, fos| {
            fos.request_invoke(reply, |_, _, _| {});
        });
    }
}

/// Handles of a deployed replicated service.
pub struct ReplicatedDeployment {
    /// The service name.
    pub name: String,
    /// Worker Processes, in registration (= routing-priority) order.
    pub workers: Vec<ProcId>,
    /// The directory's view of the instances, index-aligned with `workers`.
    pub instances: Vec<ServiceInstance>,
}

/// Deploys one [`ReplicaWorker`] per `(endpoint, controller)` placement,
/// registers each with the directory's service registry (registration
/// order is failover priority), and runs the bootstrap to completion.
pub fn deploy_replicated(
    tb: &mut Testbed,
    name: &str,
    placements: &[(Endpoint, ControllerAddr)],
    service: SimDuration,
) -> ReplicatedDeployment {
    let mut workers = Vec::new();
    for (i, &(ep, ctrl)) in placements.iter().enumerate() {
        let w = tb.add_process(
            &format!("{name}-r{i}"),
            ep,
            ctrl,
            ReplicaWorker::new(name, i, service),
        );
        tb.dir.borrow_mut().register_service_instance(name, w, ctrl);
        tb.start_process(w);
        workers.push(w);
    }
    tb.run();
    for &w in &workers {
        tb.with_service::<ReplicaWorker, _>(w, |s| {
            assert!(s.ready, "replica bootstrap failed");
        });
    }
    let instances = tb.dir.borrow().service_instances(name);
    ReplicatedDeployment {
        name: name.to_string(),
        workers,
        instances,
    }
}

/// How one logical client request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// A reply arrived (possibly after failover).
    Completed,
    /// Every failover attempt resolved with a typed verdict; the request
    /// was abandoned — resolved, not hung (§3.6).
    Verdict,
}

/// A client that survives instance failure by re-routing through the
/// directory's service registry.
///
/// Requests are sequential: route, dispatch, await the reply. A typed
/// failure on any hop (derive, invoke, or the §3.6 translation of a dead
/// Controller) or a reply timeout triggers failover: re-route, and
/// re-dispatch to whatever instance the registry now prefers. Every
/// milestone is timestamped for the recovery attribution.
pub struct FailoverClient {
    name: String,
    replicas: usize,
    dir: Shared<Directory>,
    /// Directory instances in registration order (fetched at start).
    instances: Vec<ServiceInstance>,
    /// Worker Request capabilities, index-aligned with `instances`.
    work_caps: Vec<Cid>,
    /// Routed instance index of the in-flight attempt.
    current: usize,
    /// Monotonic attempt counter (stale replies and timers are ignored).
    attempt: u64,
    /// Attempt id awaited, if any.
    outstanding: Option<u64>,
    /// Failover attempts burned on the current logical request.
    tries: u32,
    issued_at: SimTime,
    remaining: u64,
    /// Reply deadline per attempt.
    pub reply_timeout: SimDuration,
    /// Whether a failure has been observed with no success since.
    in_outage: bool,
    /// Completed request latencies (issue of the *first* attempt to reply).
    pub latencies: Vec<SimDuration>,
    /// Outcome of every logical request, in issue order.
    pub outcomes: Vec<RequestOutcome>,
    /// Typed failures / timeouts observed: `(when, instance index)`.
    pub failures: Vec<(SimTime, usize)>,
    /// Route changes: `(when, from instance, to instance)`.
    pub rehomes: Vec<(SimTime, usize, usize)>,
    /// Failover re-dispatch timestamps.
    pub redispatches: Vec<SimTime>,
    /// First success after each outage window.
    pub recoveries: Vec<SimTime>,
}

impl FailoverClient {
    /// Creates a client driving `iterations` requests against `name`
    /// (deployed with `replicas` instances).
    pub fn new(name: &str, replicas: usize, iterations: u64, dir: Shared<Directory>) -> Self {
        FailoverClient {
            name: name.to_string(),
            replicas,
            dir,
            instances: Vec::new(),
            work_caps: Vec::new(),
            current: 0,
            attempt: 0,
            outstanding: None,
            tries: 0,
            issued_at: SimTime::ZERO,
            remaining: iterations,
            reply_timeout: REPLY_TIMEOUT,
            in_outage: false,
            latencies: Vec::new(),
            outcomes: Vec::new(),
            failures: Vec::new(),
            rehomes: Vec::new(),
            redispatches: Vec::new(),
            recoveries: Vec::new(),
        }
    }

    /// All logical requests resolved (success or typed verdict)?
    pub fn all_resolved(&self) -> bool {
        self.remaining == 0 && self.outstanding.is_none()
    }

    fn fetch_caps(&mut self, i: usize, fos: &Fos<Self>) {
        if i == self.replicas {
            self.instances = self.dir.borrow().service_instances(&self.name);
            debug_assert_eq!(self.instances.len(), self.replicas);
            self.next_request(fos);
            return;
        }
        let key = format!("{}.{i}.req", self.name);
        fos.kv_get(&key, move |s: &mut Self, res, fos| {
            s.work_caps.push(res.cid());
            s.fetch_caps(i + 1, fos);
        });
    }

    /// The registry's current pick, as an index into `instances`.
    fn route(&self) -> Option<usize> {
        let inst = self.dir.borrow().service_route(&self.name)?;
        self.instances.iter().position(|i| *i == inst)
    }

    fn next_request(&mut self, fos: &Fos<Self>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.tries = 0;
        self.issued_at = fos.now();
        match self.route() {
            Some(idx) => {
                self.current = idx;
                self.dispatch(fos);
            }
            None => {
                // No live instance at all: resolved by verdict.
                self.outcomes.push(RequestOutcome::Verdict);
                self.next_request(fos);
            }
        }
    }

    fn dispatch(&mut self, fos: &Fos<Self>) {
        self.attempt += 1;
        let attempt = self.attempt;
        self.outstanding = Some(attempt);
        let work = self.work_caps[self.current];
        fos.request_create_new(
            TAG_REPLICA_REPLY,
            vec![imm(attempt)],
            vec![],
            move |_s: &mut Self, res, fos| {
                let SyscallResult::NewCid(reply) = res else {
                    return;
                };
                fos.request_derive(
                    work,
                    vec![imm(attempt)],
                    vec![reply],
                    move |s: &mut Self, res, fos| {
                        match res {
                            SyscallResult::NewCid(derived) => {
                                fos.request_invoke(derived, move |s: &mut Self, res, fos| {
                                    if !res.is_ok() {
                                        s.attempt_failed(attempt, fos);
                                    }
                                });
                            }
                            _ => s.attempt_failed(attempt, fos),
                        };
                    },
                );
            },
        );
        // Backstop for replies lost after the invoke was acknowledged
        // (e.g. the worker's node died mid-service).
        fos.sleep(self.reply_timeout, move |s: &mut Self, fos| {
            s.attempt_failed(attempt, fos);
        });
    }

    fn attempt_failed(&mut self, attempt: u64, fos: &Fos<Self>) {
        if self.outstanding != Some(attempt) {
            return; // stale timer or duplicate verdict
        }
        self.outstanding = None;
        let now = fos.now();
        self.failures.push((now, self.current));
        self.in_outage = true;
        self.tries += 1;
        if self.tries >= FAILOVER_ATTEMPTS {
            self.outcomes.push(RequestOutcome::Verdict);
            self.next_request(fos);
            return;
        }
        match self.route() {
            Some(next) => {
                if next != self.current {
                    self.rehomes.push((now, self.current, next));
                    self.current = next;
                    self.redispatches.push(now);
                    self.dispatch(fos);
                } else {
                    // The registry still prefers the instance that just
                    // failed (verdict not yet standing, or the failure
                    // was transient): back off one detection period and
                    // retry the route.
                    let tries = self.tries;
                    fos.sleep(
                        SimDuration::from_micros(100) * u64::from(tries),
                        move |s: &mut Self, fos| {
                            s.redispatches.push(fos.now());
                            s.dispatch(fos);
                        },
                    );
                }
            }
            None => {
                self.outcomes.push(RequestOutcome::Verdict);
                self.next_request(fos);
            }
        }
    }
}

impl Service for FailoverClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        self.fetch_caps(0, fos);
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_REPLICA_REPLY {
            return;
        }
        let attempt = imm_at(&req.imms, 0).unwrap_or(0);
        if self.outstanding != Some(attempt) {
            return; // late reply for an attempt already failed over
        }
        self.outstanding = None;
        self.latencies
            .push(fos.now().duration_since(self.issued_at));
        self.outcomes.push(RequestOutcome::Completed);
        if self.in_outage {
            self.in_outage = false;
            self.recoveries.push(fos.now());
        }
        self.next_request(fos);
    }
}
