#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! FractOS services and applications (§5 of the paper).
//!
//! * [`fs`] — the multi-tier storage stack: an extent-based file system
//!   over the block-device adaptor, in three data-path modes (mediated,
//!   §3.4 composition, DAX);
//! * [`matcher`] — the face-verification computation (real embeddings over
//!   real bytes) and its GPU kernel;
//! * [`faceverify`] — the end-to-end application: frontend + load client,
//!   with the storage→GPU→frontend chained control flow of §6.5;
//! * [`pipeline`] — the streaming multi-stage pipeline of the composition
//!   experiment (Fig 8), including the fully distributed chain driver;
//! * [`deploy`] — testbed assembly helpers for the paper's 3-node layout;
//! * [`replicated`] — replicated service instances with directory-routed
//!   failover, used by the crash-recovery experiments (§3.6).

pub mod deploy;
pub mod faceverify;
pub mod fs;
pub mod matcher;
pub mod pipeline;
pub mod replicated;

pub use deploy::{deploy_faceverify, DbLoader, FvDeployment};
pub use faceverify::{FaceVerifyFrontend, FvClient, FvConfig, FvSample};
pub use fs::{FsMode, FsService};
pub use matcher::{embed, matches, synth_face, FaceVerifyKernel, FACE_VERIFY_KERNEL};
pub use pipeline::{ChainDriver, ForkJoinDriver, PipelineStage};
pub use replicated::{
    deploy_replicated, FailoverClient, ReplicaWorker, ReplicatedDeployment, RequestOutcome,
};
