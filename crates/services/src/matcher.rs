//! The face-verification matcher (§5 "Application: Face Verification").
//!
//! The paper's application verifies a person's identity by matching an
//! input photo against the database photo stored for the claimed ID
//! (the paper cites GPUnet's face-verification workload).
//! The exact CUDA kernel is irrelevant to the system claims; what matters
//! is that a *real computation* runs over the transferred bytes so tests
//! can check results end to end. We use a lightweight, deterministic
//! embedding: a 16-bin intensity histogram plus block means, compared by
//! L1 distance — robust to small noise, discriminative for unrelated
//! images.

use fractos_devices::Kernel;

/// Number of histogram bins in the embedding.
const BINS: usize = 16;
/// Number of coarse block-mean features.
const BLOCKS: usize = 8;

/// Embedding dimension.
pub const EMBED_DIM: usize = BINS + BLOCKS;

/// Computes the embedding of one image (any byte length ≥ 1).
pub fn embed(image: &[u8]) -> [f32; EMBED_DIM] {
    let mut out = [0f32; EMBED_DIM];
    if image.is_empty() {
        return out;
    }
    // Intensity histogram, normalized.
    for &b in image {
        out[(b as usize) >> 4] += 1.0;
    }
    for v in out.iter_mut().take(BINS) {
        *v /= image.len() as f32;
    }
    // Coarse block means, normalized to [0, 1].
    let block = image.len().div_ceil(BLOCKS);
    for (i, chunk) in image.chunks(block).take(BLOCKS).enumerate() {
        let mean = chunk.iter().map(|&b| b as f32).sum::<f32>() / chunk.len() as f32;
        out[BINS + i] = mean / 255.0;
    }
    out
}

/// L1 distance between two embeddings, scaled to `0..=255`.
pub fn distance(a: &[f32; EMBED_DIM], b: &[f32; EMBED_DIM]) -> u8 {
    let d: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    // Maximum possible L1 distance is ≈ 2 (histograms) + 8 (blocks); scale
    // so typical unrelated images land well above the threshold.
    (d * 100.0).clamp(0.0, 255.0) as u8
}

/// Distance threshold below which two images count as the same face.
pub const MATCH_THRESHOLD: u8 = 20;

/// Whether two images match.
pub fn matches(query: &[u8], reference: &[u8]) -> bool {
    distance(&embed(query), &embed(reference)) < MATCH_THRESHOLD
}

/// The GPU kernel: input is `batch` query images followed by `batch`
/// database images, each `img` bytes; output is one distance byte per pair.
///
/// Kernel parameters: `[batch, img]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaceVerifyKernel;

/// The kernel id under which GPU adaptors register [`FaceVerifyKernel`].
pub const FACE_VERIFY_KERNEL: u64 = 0xFACE;

impl Kernel for FaceVerifyKernel {
    fn run(&self, input: &[u8], params: &[u64]) -> Vec<u8> {
        let batch = params.first().copied().unwrap_or(1).max(1) as usize;
        let img = params.get(1).copied().unwrap_or(0) as usize;
        if img == 0 || input.len() < batch * img * 2 {
            return vec![u8::MAX; batch];
        }
        let (queries, refs) = input.split_at(batch * img);
        (0..batch)
            .map(|i| {
                let q = &queries[i * img..(i + 1) * img];
                let r = &refs[i * img..(i + 1) * img];
                distance(&embed(q), &embed(r))
            })
            .collect()
    }

    fn items(&self, _input_len: u64, params: &[u64]) -> u64 {
        params.first().copied().unwrap_or(1).max(1)
    }
}

/// Deterministically generates a synthetic "face photo" for an identity.
///
/// Same id ⇒ same image; a non-zero `noise_seed` adds mild per-capture
/// noise that stays below the match threshold.
pub fn synth_face(id: u64, img_bytes: usize, noise_seed: u64) -> Vec<u8> {
    let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    let mut noise = noise_seed;
    (0..img_bytes)
        .map(|i| {
            if i % 64 == 0 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            let base = ((state >> (8 * (i % 8))) & 0xFF) as u8;
            if noise_seed != 0 && i % 97 == 0 {
                noise = noise
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                base.wrapping_add((noise % 3) as u8)
            } else {
                base
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_match() {
        let img = synth_face(42, 4096, 0);
        assert!(matches(&img, &img));
        assert_eq!(distance(&embed(&img), &embed(&img)), 0);
    }

    #[test]
    fn noisy_capture_still_matches() {
        let reference = synth_face(7, 4096, 0);
        let capture = synth_face(7, 4096, 99);
        assert!(matches(&capture, &reference));
    }

    #[test]
    fn different_identities_do_not_match() {
        for (a, b) in [(1u64, 2u64), (10, 11), (100, 200)] {
            let ia = synth_face(a, 4096, 0);
            let ib = synth_face(b, 4096, 0);
            assert!(!matches(&ia, &ib), "ids {a} and {b} must differ");
        }
    }

    #[test]
    fn kernel_processes_batches() {
        let img = 1024usize;
        let batch = 4usize;
        let mut input = Vec::new();
        // Queries: ids 0..4 (with noise); refs: ids 0,1,9,3.
        for id in 0..batch as u64 {
            input.extend(synth_face(id, img, 5));
        }
        for id in [0u64, 1, 9, 3] {
            input.extend(synth_face(id, img, 0));
        }
        let out = FaceVerifyKernel.run(&input, &[batch as u64, img as u64]);
        assert_eq!(out.len(), batch);
        assert!(out[0] < MATCH_THRESHOLD);
        assert!(out[1] < MATCH_THRESHOLD);
        assert!(out[2] >= MATCH_THRESHOLD, "id 2 vs 9 must mismatch");
        assert!(out[3] < MATCH_THRESHOLD);
    }

    #[test]
    fn kernel_rejects_short_input() {
        let out = FaceVerifyKernel.run(&[0; 10], &[4, 1024]);
        assert_eq!(out, vec![u8::MAX; 4]);
    }

    #[test]
    fn kernel_item_count_is_batch() {
        assert_eq!(FaceVerifyKernel.items(0, &[64, 4096]), 64);
        assert_eq!(FaceVerifyKernel.items(0, &[]), 1);
    }

    #[test]
    fn synth_faces_are_deterministic() {
        assert_eq!(synth_face(5, 256, 0), synth_face(5, 256, 0));
        assert_ne!(synth_face(5, 256, 0), synth_face(6, 256, 0));
    }

    #[test]
    fn embed_handles_degenerate_inputs() {
        assert_eq!(embed(&[]), [0f32; EMBED_DIM]);
        let one = embed(&[128]);
        assert!(one.iter().any(|&v| v > 0.0));
    }
}
