//! Cluster assembly helpers for the paper's workloads.
//!
//! These wire the storage stack, GPU service and face-verification
//! application onto a [`Testbed`] in the paper's deployment (Table 2):
//! node 0 = storage (NVMe + FS), node 1 = GPU, node 2 = frontend/clients.

use fractos_cap::{Cid, ControllerAddr, Perms};
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, GpuAdaptor, GpuParams, NvmeParams};

use crate::faceverify::{FaceVerifyFrontend, FvConfig};
use crate::fs::{FsMode, FsService, TAG_FS_WRITE};
use crate::matcher::{synth_face, FaceVerifyKernel, FACE_VERIFY_KERNEL};

/// Loads the reference-photo database through the storage stack and
/// publishes the file's read Request under a key.
///
/// It creates the file via the FS (which must run in [`FsMode::Dax`] so the
/// reply carries the block-device Requests), writes `count` synthetic faces
/// of `img_bytes` each through the write Request, then publishes the read
/// Request under `publish_key`.
pub struct DbLoader {
    /// Number of identities.
    pub count: u64,
    /// Bytes per image.
    pub img_bytes: u64,
    /// Key the read Request is published under.
    pub publish_key: String,
    /// FS registry prefix.
    pub fs_key: String,
    read_req: Option<Cid>,
    write_req: Option<Cid>,
    /// Set once the database is on disk and published.
    pub loaded: bool,
}

impl DbLoader {
    /// Creates a loader for `count` identities of `img_bytes` each.
    pub fn new(count: u64, img_bytes: u64, publish_key: &str, fs_key: &str) -> Self {
        assert!(
            count * img_bytes <= crate::fs::EXTENT_SIZE,
            "database must fit one extent"
        );
        DbLoader {
            count,
            img_bytes,
            publish_key: publish_key.to_string(),
            fs_key: fs_key.to_string(),
            read_req: None,
            write_req: None,
            loaded: false,
        }
    }
}

/// Loader reply tag.
const TAG_DB_BOOT: u64 = 0x0600;

impl Service for DbLoader {
    fn on_start(&mut self, fos: &Fos<Self>) {
        let size = self.count * self.img_bytes;
        let fs_create = format!("{}.create", self.fs_key);
        fos.call(Syscall::KvGet { key: fs_create }, move |_s, res, fos| {
            let create = res.cid();
            fos.request_create_new(
                TAG_DB_BOOT,
                vec![imm(0)],
                vec![],
                move |_s: &mut Self, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(create, vec![imm(size)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    });
                },
            );
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap_or(u64::MAX);
        match phase {
            0 => {
                // DAX create reply: imms [0, file, ext]; caps [read, write].
                self.read_req = Some(req.caps[0]);
                self.write_req = Some(req.caps[1]);
                // Build the database image and write it in one shot.
                let total = self.count * self.img_bytes;
                let addr = fos.mem_alloc(total);
                let mut data = Vec::with_capacity(total as usize);
                for id in 0..self.count {
                    data.extend(synth_face(id, self.img_bytes as usize, 0));
                }
                fos.mem_write(addr, 0, &data).expect("db upload");
                let write_req = self.write_req.expect("set");
                fos.memory_create(addr, total, Perms::RW, move |_s: &mut Self, res, fos| {
                    let SyscallResult::NewCid(src) = res else {
                        return;
                    };
                    fos.request_create_new(
                        TAG_DB_BOOT,
                        vec![imm(1)],
                        vec![],
                        move |_s: &mut Self, res, fos| {
                            let done = res.cid();
                            fos.request_create_new(
                                TAG_DB_BOOT,
                                vec![imm(9)],
                                vec![],
                                move |_s: &mut Self, res, fos| {
                                    let err = res.cid();
                                    fos.request_derive(
                                        write_req,
                                        vec![imm(0), imm(total)],
                                        vec![src, done, err],
                                        |_s, res, fos| {
                                            fos.request_invoke(res.cid(), |_, res, _| {
                                                debug_assert!(res.is_ok())
                                            });
                                        },
                                    );
                                },
                            );
                        },
                    );
                });
            }
            1 => {
                // Database written: publish the read Request.
                let read = self.read_req.expect("set");
                let key = self.publish_key.clone();
                fos.kv_put(&key, read, |s: &mut Self, res, _| {
                    debug_assert!(res.is_ok());
                    s.loaded = true;
                });
            }
            9 => panic!("database write failed"),
            _ => {}
        }
        let _ = TAG_FS_WRITE;
    }
}

/// Handles of a deployed face-verification stack.
#[derive(Debug, Clone, Copy)]
pub struct FvDeployment {
    /// The block-device adaptor Process.
    pub blk: ProcId,
    /// The FS Process.
    pub fs: ProcId,
    /// The database loader Process.
    pub loader: ProcId,
    /// The GPU adaptor Process.
    pub gpu: ProcId,
    /// The application frontend Process.
    pub frontend: ProcId,
    /// Output-side stack (only when `store_results` is configured):
    /// `(output blk adaptor, output FS, output-file creator)`.
    pub output: Option<(ProcId, ProcId, ProcId)>,
}

/// Creates the output file on a Compose-mode FS and publishes its write
/// Request — the §3.4 composition seam the frontend chains into.
pub struct OutFileCreator {
    /// Output file capacity in bytes.
    pub size: u64,
    /// Key the write Request is published under.
    pub publish_key: String,
    /// FS registry prefix.
    pub fs_key: String,
    /// Set once published.
    pub ready: bool,
}

impl Service for OutFileCreator {
    fn on_start(&mut self, fos: &Fos<Self>) {
        let size = self.size;
        let create_key = format!("{}.create", self.fs_key);
        fos.call(Syscall::KvGet { key: create_key }, move |_s, res, fos| {
            let create = res.cid();
            fos.request_create_new(
                TAG_DB_BOOT,
                vec![imm(0)],
                vec![],
                move |_s: &mut Self, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(create, vec![imm(size)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    });
                },
            );
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        // Compose-mode create reply: caps [fs read, fs write].
        let write = req.caps[1];
        let key = self.publish_key.clone();
        fos.kv_put(&key, write, |s: &mut Self, res, _| {
            debug_assert!(res.is_ok());
            s.ready = true;
        });
    }
}

/// Deploys the full FractOS face-verification stack on the paper's 3-node
/// testbed layout and runs the bootstrap to completion.
///
/// `ctrls[i]` is the Controller for Processes on node `i` (use
/// [`Testbed::controllers_per_node`] or [`Testbed::shared_controller`]).
pub fn deploy_faceverify(
    tb: &mut Testbed,
    ctrls: &[ControllerAddr],
    cfg: FvConfig,
    db_count: u64,
) -> FvDeployment {
    let img = cfg.img_bytes;

    let blk = tb.add_process(
        "blk-adaptor",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();

    let fs = tb.add_process(
        "fs",
        cpu(0),
        ctrls[0],
        FsService::new(FsMode::Dax, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();

    let loader = tb.add_process(
        "db-loader",
        cpu(2),
        ctrls[2],
        DbLoader::new(db_count, img, &cfg.db_read_key.clone(), "fs"),
    );
    tb.start_process(loader);
    tb.run();
    tb.with_service::<DbLoader, _>(loader, |l| assert!(l.loaded, "db load failed"));

    let gpu_proc = tb.add_process(
        "gpu-adaptor",
        cpu(1),
        ctrls[1],
        GpuAdaptor::new(GpuParams::default(), gpu(1), &cfg.gpu_key.clone())
            .with_kernel(FACE_VERIFY_KERNEL, FaceVerifyKernel),
    );
    tb.start_process(gpu_proc);
    tb.run();

    // Optional output tier (full Fig 2 ring): the output SSD behind a
    // Compose-mode FS on the "filesys" node (node 1), hidden from the
    // application except through the published write Request.
    let output = if cfg.store_results {
        let oblk = tb.add_process(
            "out-blk-adaptor",
            cpu(1),
            ctrls[1],
            BlockAdaptor::new(NvmeParams::default(), nvme(1), "oblk"),
        );
        tb.start_process(oblk);
        tb.run();
        let ofs = tb.add_process(
            "out-fs",
            cpu(1),
            ctrls[1],
            FsService::new(FsMode::Compose, "ofs", "oblk"),
        );
        tb.start_process(ofs);
        tb.run();
        let creator = tb.add_process(
            "out-creator",
            cpu(2),
            ctrls[2],
            OutFileCreator {
                size: 1 << 20,
                publish_key: cfg.out_write_key.clone(),
                fs_key: "ofs".into(),
                ready: false,
            },
        );
        tb.start_process(creator);
        tb.run();
        tb.with_service::<OutFileCreator, _>(creator, |c| assert!(c.ready));
        Some((oblk, ofs, creator))
    } else {
        None
    };

    let frontend = tb.add_process("frontend", cpu(2), ctrls[2], FaceVerifyFrontend::new(cfg));
    tb.start_process(frontend);
    tb.run();
    tb.with_service::<FaceVerifyFrontend, _>(frontend, |f| {
        assert!(f.ready, "frontend bootstrap failed")
    });

    FvDeployment {
        blk,
        fs,
        loader,
        gpu: gpu_proc,
        frontend,
        output,
    }
}
