//! End-to-end integrity under injected device faults: the storage stack
//! must complete with byte-verified payloads while the NVMe beneath it
//! fails reads, tears writes and spikes latencies — on both runtime
//! backends — and the whole run must replay bit-identically from
//! `(seed, plan)`.

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, NvmeParams};
use fractos_net::{DeviceFaultCounter, FaultPlan, NetParams, Topology};
use fractos_services::fs::{FsMode, FsService};
use fractos_sim::RuntimeKind;

const TAG_T: u64 = 0x7100;
const IO: u64 = 64 * 1024;

/// FS client that writes a pattern, reads it back and records — instead of
/// panicking on — a storage-stack error, so tests can report seeds.
struct FsChaosClient {
    fs_read: Option<Cid>,
    fs_write: Option<Cid>,
    buf: Option<(u64, Cid)>,
    pub done: bool,
    pub failed: bool,
    pub data_ok: bool,
}

impl FsChaosClient {
    fn new() -> Self {
        FsChaosClient {
            fs_read: None,
            fs_write: None,
            buf: None,
            done: false,
            failed: false,
            data_ok: false,
        }
    }

    fn pattern() -> Vec<u8> {
        (0..IO).map(|i| (i * 31 % 251) as u8 + 1).collect()
    }

    /// Makes a success/error continuation pair and hands both cids to `f`.
    fn io_pair(
        fos: &Fos<Self>,
        ok: u64,
        err: u64,
        f: impl FnOnce(&mut Self, Cid, Cid, &Fos<Self>) + Send + 'static,
    ) {
        fos.request_create_new(TAG_T, vec![imm(ok)], vec![], move |_s, res, fos| {
            let success = res.cid();
            fos.request_create_new(TAG_T, vec![imm(err)], vec![], move |s, res, fos| {
                f(s, success, res.cid(), fos);
            });
        });
    }
}

impl Service for FsChaosClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("fs.create", |_s: &mut Self, res, fos| {
            let create = res.cid();
            fos.request_create_new(
                TAG_T,
                vec![imm(0)],
                vec![],
                move |_s: &mut Self, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(create, vec![imm(IO)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                },
            );
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                self.fs_read = Some(req.caps[0]);
                self.fs_write = Some(req.caps[1]);
                let wreq = self.fs_write.unwrap();
                let addr = fos.mem_alloc(IO);
                fos.mem_write(addr, 0, &FsChaosClient::pattern()).unwrap();
                fos.memory_create(addr, IO, Perms::RW, move |_s: &mut Self, res, fos| {
                    let src = res.cid();
                    FsChaosClient::io_pair(fos, 1, 8, move |_s, ok, err, fos| {
                        fos.request_derive(
                            wreq,
                            vec![imm(0), imm(IO)],
                            vec![src, ok, err],
                            |_s, res, fos| {
                                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                            },
                        );
                    });
                });
            }
            1 => {
                let rreq = self.fs_read.unwrap();
                let addr = fos.mem_alloc(IO);
                fos.memory_create(addr, IO, Perms::RW, move |s: &mut Self, res, fos| {
                    let dst = res.cid();
                    s.buf = Some((addr, dst));
                    FsChaosClient::io_pair(fos, 2, 7, move |_s, ok, err, fos| {
                        fos.request_derive(
                            rreq,
                            vec![imm(0), imm(IO)],
                            vec![dst, ok, err],
                            |_s, res, fos| {
                                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                            },
                        );
                    });
                });
            }
            2 => {
                let (addr, _) = self.buf.unwrap();
                let got = fos.mem_read(addr, 0, IO).unwrap();
                self.data_ok = got == FsChaosClient::pattern();
                self.done = true;
            }
            7 | 8 => {
                self.failed = true;
                self.done = true;
            }
            _ => unreachable!(),
        }
    }
}

/// The recoverable device-fault plan: frequent-but-transient NVMe media
/// errors, torn writes and latency spikes. No fault here is permanent, so
/// the FS retry budget (`RetryPolicy::fs_io_retries`) must carry every op through.
fn recoverable_device_plan() -> FaultPlan {
    FaultPlan::new()
        .nvme_read_errors(nvme(0), 0.35)
        .nvme_write_errors(nvme(0), 0.15)
        .nvme_torn_writes(nvme(0), 0.35)
        .device_latency_spikes(nvme(0), 0.2, 4.0)
}

/// Runs a write+read FS roundtrip on `kind` under `plan` and returns
/// (completed cleanly, payload verified, FS retries, device-fault counters).
fn run_fs_chaos(
    kind: RuntimeKind,
    seed: u64,
    plan: Option<FaultPlan>,
) -> (bool, bool, u64, DeviceFaultCounter) {
    let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), seed, kind);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process(
        "fs",
        cpu(0),
        ctrls[0],
        FsService::new(FsMode::Mediated, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();
    if let Some(plan) = plan {
        tb.install_fault_plan(plan, seed);
    }
    let cli = tb.add_process("cli", cpu(2), ctrls[2], FsChaosClient::new());
    tb.start_process(cli);
    tb.run();

    let (clean, ok) =
        tb.with_service::<FsChaosClient, _>(cli, |c| (c.done && !c.failed, c.data_ok));
    let retried = tb.with_service::<FsService, _>(fs, |f| f.retried_ops);
    let faults = tb.traffic().device_faults_at(nvme(0));
    (clean, ok, retried, faults)
}

/// Acceptance gate: the FS workload completes with a byte-verified payload
/// under the recoverable device-fault plan, on both runtime backends, and
/// the recovery layer demonstrably did work (faults fired, retries ran).
#[test]
fn fs_completes_verified_under_device_faults_on_both_backends() {
    for kind in [RuntimeKind::SingleThreaded, RuntimeKind::Sharded] {
        let (clean, ok, retried, faults) = run_fs_chaos(kind, 61, Some(recoverable_device_plan()));
        assert!(
            clean,
            "{kind:?}: FS roundtrip failed under recoverable plan"
        );
        assert!(ok, "{kind:?}: payload not byte-identical after recovery");
        let total = faults.failed + faults.torn + faults.spiked;
        assert!(total > 0, "{kind:?}: plan armed but no device fault fired");
        assert!(
            retried > 0,
            "{kind:?}: faults fired but the FS never retried"
        );
    }
}

/// Replay contract: the same `(seed, plan)` reproduces the same device
/// faults and the same retry count — within a backend and across backends
/// (device draws are keyed by per-device op index, not wall clock).
#[test]
fn fs_device_faults_replay_bit_identically() {
    let a = run_fs_chaos(
        RuntimeKind::SingleThreaded,
        61,
        Some(recoverable_device_plan()),
    );
    let b = run_fs_chaos(
        RuntimeKind::SingleThreaded,
        61,
        Some(recoverable_device_plan()),
    );
    assert_eq!(a, b, "same (seed, plan, backend) diverged");
    let c = run_fs_chaos(RuntimeKind::Sharded, 61, Some(recoverable_device_plan()));
    assert_eq!(a, c, "device-fault replay diverged across backends");
}

/// An armed-but-empty device plan is indistinguishable from no plan: no
/// fault counters, no retries, same verified payload.
#[test]
fn empty_device_plan_is_neutral() {
    let bare = run_fs_chaos(RuntimeKind::SingleThreaded, 61, None);
    let empty = run_fs_chaos(RuntimeKind::SingleThreaded, 61, Some(FaultPlan::new()));
    assert_eq!(bare, empty, "empty plan perturbed the run");
    let (clean, ok, retried, faults) = bare;
    assert!(clean && ok);
    assert_eq!(retried, 0);
    assert_eq!(faults, DeviceFaultCounter::default());
}
