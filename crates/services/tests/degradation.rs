//! Graceful degradation of the storage stack under failures.
//!
//! An FS whose block-adaptor dependency is missing or partitioned away
//! must answer every client request with a *typed* failure — a zero-cap
//! reply carrying an `fs_err` code — never hang a continuation. Success
//! replies always carry at least one capability, so the two shapes cannot
//! be confused.

use fractos_cap::Cid;
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, NvmeParams};
use fractos_net::{FaultPlan, NodeId};
use fractos_services::fs::{fs_err, FsMode, FsService};
use fractos_sim::SimTime;

const TAG_T: u64 = 0x7100;

/// Issues one FS request (create or open) and records the raw reply.
///
/// With `fire_on_start` unset it only resolves the target Request in
/// `on_start`; the harness triggers the actual call later via [`fire`] —
/// used to interpose a partition between lookup and use.
struct OneShotClient {
    key: &'static str,
    args: Vec<u64>,
    fire_on_start: bool,
    pub target: Option<Cid>,
    pub reply: Option<(Option<u64>, usize)>,
}

impl OneShotClient {
    fn create(size: u64) -> Self {
        OneShotClient {
            key: "fs.create",
            args: vec![size],
            fire_on_start: true,
            target: None,
            reply: None,
        }
    }

    fn open(file: u64, mode: u64) -> Self {
        OneShotClient {
            key: "fs.open",
            args: vec![file, mode],
            fire_on_start: true,
            target: None,
            reply: None,
        }
    }

    fn deferred(mut self) -> Self {
        self.fire_on_start = false;
        self
    }
}

/// Derives `target` with `args` plus a fresh continuation and invokes it.
fn fire(args: Vec<u64>, target: Cid, fos: &Fos<OneShotClient>) {
    let args: Vec<_> = args.iter().map(|&a| imm(a)).collect();
    fos.request_create_new(
        TAG_T,
        vec![],
        vec![],
        move |_s: &mut OneShotClient, res, fos| {
            let cont: Cid = res.cid();
            fos.request_derive(target, args, vec![cont], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, _, _| {});
            });
        },
    );
}

impl Service for OneShotClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        let args = self.args.clone();
        let fire_now = self.fire_on_start;
        fos.kv_get(self.key, move |s: &mut Self, res, fos| {
            let target = res.cid();
            s.target = Some(target);
            if fire_now {
                fire(args, target, fos);
            }
        });
    }

    fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
        self.reply = Some((imm_at(&req.imms, 0), req.caps.len()));
    }
}

/// No block adaptor at all: the FS bootstrap's `KvGet` fails, but the FS
/// still publishes its endpoints and answers creates with `DEGRADED`.
#[test]
fn fs_without_block_adaptor_degrades_typed() {
    let mut tb = Testbed::paper(11);
    let ctrls = tb.controllers_per_node(false);
    let fs = tb.add_process(
        "fs",
        cpu(0),
        ctrls[0],
        FsService::new(FsMode::Mediated, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();

    let cli = tb.add_process("cli", cpu(2), ctrls[2], OneShotClient::create(4096));
    tb.start_process(cli);
    tb.run();
    tb.with_service::<OneShotClient, _>(cli, |c| {
        assert_eq!(
            c.reply,
            Some((Some(fs_err::DEGRADED), 0)),
            "degraded FS must fail creates typed, with zero caps"
        );
    });
}

/// Opening a file that does not exist replies `NO_FILE` instead of
/// dropping the request.
#[test]
fn fs_open_missing_file_replies_typed() {
    let mut tb = Testbed::paper(12);
    let ctrls = tb.controllers_per_node(false);
    let fs = tb.add_process(
        "fs",
        cpu(0),
        ctrls[0],
        FsService::new(FsMode::Mediated, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();

    let cli = tb.add_process("cli", cpu(2), ctrls[2], OneShotClient::open(99, 0));
    tb.start_process(cli);
    tb.run();
    tb.with_service::<OneShotClient, _>(cli, |c| {
        assert_eq!(c.reply, Some((Some(fs_err::NO_FILE), 0)));
    });
}

/// The FS bootstraps against a live block adaptor, then the adaptor's node
/// is partitioned away (no heal). A create exhausts the Controller's peer
/// retry budget, the pending op fails with `ControllerUnreachable`, and
/// the FS translates that into a typed `DEGRADED` reply to the client —
/// which sits on an unpartitioned node and must not hang.
#[test]
fn fs_create_fails_typed_when_block_adaptor_partitioned() {
    let mut tb = Testbed::paper(13);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    // FS on node 1 so its extent provisioning crosses the fabric.
    let fs = tb.add_process(
        "fs",
        cpu(1),
        ctrls[1],
        FsService::new(FsMode::Mediated, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();

    // The client resolves `fs.create` while the fabric is still healthy
    // (a lookup through the registry reaches the owning Controller), …
    let cli = tb.add_process(
        "cli",
        cpu(2),
        ctrls[2],
        OneShotClient::create(4096).deferred(),
    );
    tb.start_process(cli);
    tb.run();
    let target = tb.with_service::<OneShotClient, _>(cli, |c| c.target.expect("lookup failed"));

    // … then node 1 ↔ node 0 is severed (the client's node keeps full
    // connectivity) and only now does the client fire the create.
    tb.install_fault_plan(
        FaultPlan::new().partition(NodeId(0), NodeId(1), SimTime::ZERO, None),
        13,
    );
    let fos = tb.fos_of::<OneShotClient>(cli);
    fire(vec![4096], target, &fos);
    tb.poke(cli);
    tb.run();
    tb.with_service::<OneShotClient, _>(cli, |c| {
        assert_eq!(
            c.reply,
            Some((Some(fs_err::DEGRADED), 0)),
            "partitioned block adaptor must surface as a typed failure"
        );
    });
}
