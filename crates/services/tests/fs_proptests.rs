//! Property test: the storage stack is a faithful byte store under
//! arbitrary write/read patterns, in every data-path mode.

use proptest::prelude::*;

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, NvmeParams};
use fractos_services::fs::{FsMode, FsService};

const TAG: u64 = 0x7300;
const FILE: u64 = 64 * 1024;

/// One scripted I/O.
#[derive(Debug, Clone)]
struct Op {
    write: bool,
    offset: u64,
    len: u64,
    fill: u8,
}

/// Client that replays a fixed op list and checks read contents against a
/// shadow model.
struct Replayer {
    ops: Vec<Op>,
    shadow: Vec<u8>,
    next: usize,
    handles: Option<(Cid, Cid)>,
    buf_addr: u64,
    buf_cid: Option<Cid>,
    pending: Option<Op>,
    pub mismatches: usize,
    pub completed: usize,
}

impl Replayer {
    fn new(ops: Vec<Op>) -> Self {
        Replayer {
            ops,
            shadow: vec![0; FILE as usize],
            next: 0,
            handles: None,
            buf_addr: 0,
            buf_cid: None,
            pending: None,
            mismatches: 0,
            completed: 0,
        }
    }

    fn step(&mut self, fos: &Fos<Self>) {
        let Some(op) = self.ops.get(self.next).cloned() else {
            return;
        };
        self.next += 1;
        self.pending = Some(op.clone());
        let (r, w) = self.handles.unwrap();
        if op.write {
            let data = vec![op.fill; op.len as usize];
            self.shadow[op.offset as usize..(op.offset + op.len) as usize].copy_from_slice(&data);
            fos.mem_write(self.buf_addr, 0, &data).unwrap();
        }
        let req = if op.write { w } else { r };
        let buf = self.buf_cid.unwrap();
        // The stack moves exactly `len` bytes, so hand it an exactly-sized
        // view of the client buffer.
        fos.call(
            fractos_core::types::Syscall::MemoryDiminish {
                cid: buf,
                offset: 0,
                size: op.len,
                drop_perms: Perms::NONE,
            },
            move |_s: &mut Self, res, fos| {
                let SyscallResult::NewCid(view) = res else {
                    panic!("diminish")
                };
                fos.request_create_new(
                    TAG,
                    vec![imm(1)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let ok = res.cid();
                        fos.request_create_new(
                            TAG,
                            vec![imm(9)],
                            vec![],
                            move |_s: &mut Self, res, fos| {
                                let err = res.cid();
                                fos.request_derive(
                                    req,
                                    vec![imm(op.offset), imm(op.len)],
                                    vec![view, ok, err],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            },
                        );
                    },
                );
            },
        );
    }
}

impl Service for Replayer {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("fs.create", |_s: &mut Self, res, fos| {
            let create = res.cid();
            fos.request_create_new(TAG, vec![imm(0)], vec![], move |_s: &mut Self, res, fos| {
                let cont = res.cid();
                fos.request_derive(create, vec![imm(FILE)], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        match imm_at(&req.imms, 0).unwrap() {
            0 => {
                self.handles = Some((req.caps[0], req.caps[1]));
                // One reusable maximum-size buffer (the view sizes are
                // enforced by the stack, copies move exactly `len` bytes
                // because the buffer is registered per op size... we
                // re-register per op to keep sizes exact).
                self.buf_addr = fos.mem_alloc(FILE);
                fos.memory_create(self.buf_addr, FILE, Perms::RW, |s: &mut Self, res, fos| {
                    s.buf_cid = Some(res.cid());
                    s.step(fos);
                });
            }
            1 => {
                // Op complete; verify reads.
                let op = self.pending.take().expect("op in flight");
                if !op.write {
                    let got = fos.mem_read(self.buf_addr, 0, op.len).unwrap();
                    let want = &self.shadow[op.offset as usize..(op.offset + op.len) as usize];
                    if got != want {
                        self.mismatches += 1;
                    }
                }
                self.completed += 1;
                self.step(fos);
            }
            9 => panic!("unexpected storage error"),
            _ => unreachable!(),
        }
    }
}

fn run_mode(mode: FsMode, ops: Vec<Op>) -> (usize, usize) {
    let n = ops.len();
    let mut tb = Testbed::paper(77);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process("fs", cpu(1), ctrls[1], FsService::new(mode, "fs", "blk"));
    tb.start_process(fs);
    tb.run();
    let client = tb.add_process("client", cpu(2), ctrls[2], Replayer::new(ops));
    tb.start_process(client);
    tb.run();
    let (mis, done) = tb.with_service::<Replayer, _>(client, |r| (r.mismatches, r.completed));
    assert_eq!(done, n, "all ops completed in {mode:?}");
    (mis, done)
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..FILE, 1u64..8192, any::<u8>()).prop_map(|(write, off, len, fill)| {
            let len = len.min(FILE - off).max(1);
            Op {
                write,
                offset: off,
                len,
                fill,
            }
        }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The mediated FS is a faithful byte store.
    #[test]
    fn mediated_fs_is_faithful(ops in arb_ops()) {
        let (mismatches, _) = run_mode(FsMode::Mediated, ops);
        prop_assert_eq!(mismatches, 0);
    }

    /// The §3.4 composed data path returns the same bytes.
    #[test]
    fn composed_fs_is_faithful(ops in arb_ops()) {
        let (mismatches, _) = run_mode(FsMode::Compose, ops);
        prop_assert_eq!(mismatches, 0);
    }

    /// DAX direct access returns the same bytes.
    #[test]
    fn dax_is_faithful(ops in arb_ops()) {
        let (mismatches, _) = run_mode(FsMode::Dax, ops);
        prop_assert_eq!(mismatches, 0);
    }
}
