//! End-to-end tests of the storage stack, the pipeline, and the full
//! face-verification application on the simulated 3-node testbed.

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, NvmeParams};
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::{FvClient, FvConfig};
use fractos_services::fs::{FsMode, FsService};
use fractos_services::pipeline::{ChainDriver, PipelineStage};

const TAG_T: u64 = 0x7000;

/// Generic FS client: create file, write pattern, read back, compare.
struct FsClient {
    io: u64,
    fs_read: Option<Cid>,
    fs_write: Option<Cid>,
    buf: Option<(u64, Cid)>,
    pub done: bool,
    pub data_ok: bool,
    pub write_done_at: Option<fractos_sim::SimTime>,
}

impl FsClient {
    fn new(io: u64) -> Self {
        FsClient {
            io,
            fs_read: None,
            fs_write: None,
            buf: None,
            done: false,
            data_ok: false,
            write_done_at: None,
        }
    }

    fn pattern(io: u64) -> Vec<u8> {
        (0..io).map(|i| (i * 13 % 251) as u8).collect()
    }
}

impl Service for FsClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("fs.create", |s: &mut Self, res, fos| {
            let create = res.cid();
            let size = s.io.max(4096);
            fos.request_create_new(
                TAG_T,
                vec![imm(0)],
                vec![],
                move |_s: &mut Self, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(create, vec![imm(size)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                },
            );
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                // Create reply: caps depend on mode; [read, write] order
                // holds in every mode for a single-extent rw file.
                self.fs_read = Some(req.caps[0]);
                self.fs_write = Some(req.caps[1]);
                let io = self.io;
                let wreq = self.fs_write.unwrap();
                let addr = fos.mem_alloc(io);
                fos.mem_write(addr, 0, &FsClient::pattern(io)).unwrap();
                fos.memory_create(addr, io, Perms::RW, move |_s: &mut Self, res, fos| {
                    let src = res.cid();
                    fos.request_create_new(
                        TAG_T,
                        vec![imm(1)],
                        vec![],
                        move |_s: &mut Self, res, fos| {
                            let ok = res.cid();
                            fos.request_create_new(
                                TAG_T,
                                vec![imm(8)],
                                vec![],
                                move |_s: &mut Self, res, fos| {
                                    let err = res.cid();
                                    fos.request_derive(
                                        wreq,
                                        vec![imm(0), imm(io)],
                                        vec![src, ok, err],
                                        |_s, res, fos| {
                                            fos.request_invoke(res.cid(), |_, res, _| {
                                                assert!(res.is_ok())
                                            });
                                        },
                                    );
                                },
                            );
                        },
                    );
                });
            }
            1 => {
                self.write_done_at = Some(fos.now());
                let io = self.io;
                let rreq = self.fs_read.unwrap();
                let addr = fos.mem_alloc(io);
                fos.memory_create(addr, io, Perms::RW, move |s: &mut Self, res, fos| {
                    let dst = res.cid();
                    s.buf = Some((addr, dst));
                    fos.request_create_new(
                        TAG_T,
                        vec![imm(2)],
                        vec![],
                        move |_s: &mut Self, res, fos| {
                            let ok = res.cid();
                            fos.request_create_new(
                                TAG_T,
                                vec![imm(7)],
                                vec![],
                                move |_s: &mut Self, res, fos| {
                                    let err = res.cid();
                                    fos.request_derive(
                                        rreq,
                                        vec![imm(0), imm(io)],
                                        vec![dst, ok, err],
                                        |_s, res, fos| {
                                            fos.request_invoke(res.cid(), |_, res, _| {
                                                assert!(res.is_ok())
                                            });
                                        },
                                    );
                                },
                            );
                        },
                    );
                });
            }
            2 => {
                let (addr, _) = self.buf.unwrap();
                let got = fos.mem_read(addr, 0, self.io).unwrap();
                self.data_ok = got == FsClient::pattern(self.io);
                self.done = true;
            }
            7 | 8 => panic!("storage stack error in phase {phase}"),
            _ => unreachable!(),
        }
    }
}

fn run_fs_mode(mode: FsMode, io: u64) -> (bool, f64) {
    let mut tb = Testbed::paper(31);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process("fs", cpu(0), ctrls[0], FsService::new(mode, "fs", "blk"));
    tb.start_process(fs);
    tb.run();

    let cli = tb.add_process("cli", cpu(2), ctrls[2], FsClient::new(io));
    tb.start_process(cli);
    tb.run();

    tb.with_service::<FsClient, _>(cli, |c| {
        assert!(c.done, "{mode:?} did not finish");
        let read_latency = tb_latency(c);
        (c.data_ok, read_latency)
    })
}

fn tb_latency(c: &FsClient) -> f64 {
    // Latency proxy: covered by the bench harness; here we only need a
    // relative ordering, so report 0 when timing is missing.
    let _ = c;
    0.0
}

#[test]
fn fs_roundtrips_all_modes() {
    for mode in [FsMode::Mediated, FsMode::Compose, FsMode::Dax] {
        let (ok, _) = run_fs_mode(mode, 64 * 1024);
        assert!(ok, "data corrupted in {mode:?}");
    }
}

#[test]
fn fs_multi_extent_files() {
    // A 3 MiB file spans three extents; per-extent IOs must hit the right
    // volume.
    let mut tb = Testbed::paper(37);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process(
        "fs",
        cpu(0),
        ctrls[0],
        FsService::new(FsMode::Mediated, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();

    struct MultiExtent {
        handles: Option<(Cid, Cid)>,
        stage: u64,
        pub ok: u32,
    }
    impl Service for MultiExtent {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("fs.create", |_s, res, fos| {
                let create = res.cid();
                fos.request_create_new(
                    TAG_T,
                    vec![imm(0)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        fos.request_derive(
                            create,
                            vec![imm(3 * fractos_services::fs::EXTENT_SIZE)],
                            vec![cont],
                            |_s, res, fos| {
                                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                            },
                        );
                    },
                );
            });
        }
        fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
            let phase = imm_at(&req.imms, 0).unwrap();
            if phase == 0 {
                self.handles = Some((req.caps[0], req.caps[1]));
            }
            if phase == 9 {
                panic!("io error");
            }
            if phase >= 1 {
                self.ok += 1;
            }
            // Write 4 KiB into each extent in turn.
            if self.stage < 3 {
                let ext = self.stage;
                self.stage += 1;
                let (_, wreq) = self.handles.unwrap();
                let addr = fos.mem_alloc(4096);
                fos.mem_write(addr, 0, &[ext as u8 + 1; 4096]).unwrap();
                fos.memory_create(addr, 4096, Perms::RW, move |_s: &mut Self, res, fos| {
                    let src = res.cid();
                    fos.request_create_new(
                        TAG_T,
                        vec![imm(1 + ext)],
                        vec![],
                        move |_s: &mut Self, res, fos| {
                            let ok = res.cid();
                            fos.request_create_new(
                                TAG_T,
                                vec![imm(9)],
                                vec![],
                                move |_s: &mut Self, res, fos| {
                                    let err = res.cid();
                                    let off = ext * fractos_services::fs::EXTENT_SIZE + 512;
                                    fos.request_derive(
                                        wreq,
                                        vec![imm(off), imm(4096)],
                                        vec![src, ok, err],
                                        |_s, res, fos| {
                                            fos.request_invoke(res.cid(), |_, res, _| {
                                                assert!(res.is_ok())
                                            });
                                        },
                                    );
                                },
                            );
                        },
                    );
                });
            }
        }
    }
    let cli = tb.add_process(
        "cli",
        cpu(2),
        ctrls[2],
        MultiExtent {
            handles: None,
            stage: 0,
            ok: 0,
        },
    );
    tb.start_process(cli);
    tb.run();
    tb.with_service::<MultiExtent, _>(cli, |c| {
        assert_eq!(c.ok, 3, "all three extent writes must complete");
    });
    // Each extent is a distinct volume with the pattern at offset 512.
    tb.with_service::<FsService, _>(fs, |f| {
        assert_eq!(f.file_volumes(1).map(|v| v.len()), Some(3));
    });
}

#[test]
fn chain_pipeline_streams_and_completes() {
    let mut tb = Testbed::paper(41);
    let ctrls = tb.controllers_per_node(false);
    let stages = 3usize;
    let size = 16 * 1024u64;
    let mut stage_procs = Vec::new();
    for i in 0..stages {
        let node = (i % 3) as u32;
        let p = tb.add_process(
            &format!("stage{i}"),
            cpu(node),
            ctrls[node as usize],
            PipelineStage::new(i, size),
        );
        tb.start_process(p);
        tb.run();
        stage_procs.push(p);
    }
    let driver = tb.add_process(
        "driver",
        cpu(0),
        ctrls[0],
        ChainDriver::new(stages, size, 5),
    );
    tb.start_process(driver);
    tb.run();

    tb.with_service::<ChainDriver, _>(driver, |d| {
        assert_eq!(d.latencies.len(), 5);
        assert!(d.latencies[0].as_micros_f64() > 0.0);
    });
    for p in stage_procs {
        tb.with_service::<PipelineStage, _>(p, |s| assert_eq!(s.forwarded, 5));
    }
}

#[test]
fn face_verification_end_to_end() {
    let mut tb = Testbed::paper(51);
    let ctrls = tb.controllers_per_node(false);
    let cfg = FvConfig::default();
    let dep = deploy_faceverify(&mut tb, &ctrls, cfg, 256);

    let client = tb.add_process("client", cpu(2), ctrls[2], FvClient::new(4096, 8, 10, 1));
    tb.start_process(client);
    tb.run();

    tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(c.samples.len(), 10, "all requests answered");
        for (i, s) in c.samples.iter().enumerate() {
            assert!(
                s.all_matched,
                "request {i}: noisy captures of the true ids must match"
            );
            assert!(s.latency().as_micros_f64() > 0.0);
        }
    });
    tb.with_service::<fractos_services::FaceVerifyFrontend, _>(dep.frontend, |f| {
        assert_eq!(f.served, 10);
    });
}

#[test]
fn face_verification_with_in_flight_pipelining() {
    let mut tb = Testbed::paper(52);
    let ctrls = tb.controllers_per_node(false);
    let dep = deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);

    // Sequential client for baseline duration.
    let seq = tb.add_process("seq", cpu(2), ctrls[2], FvClient::new(4096, 8, 8, 1));
    tb.start_process(seq);
    let t0 = tb.now();
    tb.run();
    let seq_span = tb.now().duration_since(t0);

    // Pipelined client: 4 in flight must be faster in wall-clock terms.
    let pipe = tb.add_process("pipe", cpu(2), ctrls[2], FvClient::new(4096, 8, 8, 4));
    tb.start_process(pipe);
    let t1 = tb.now();
    tb.run();
    let pipe_span = tb.now().duration_since(t1);

    tb.with_service::<FvClient, _>(seq, |c| assert_eq!(c.samples.len(), 8));
    tb.with_service::<FvClient, _>(pipe, |c| assert_eq!(c.samples.len(), 8));
    assert!(
        pipe_span.as_secs_f64() < seq_span.as_secs_f64() * 0.8,
        "pipelining should overlap: seq {seq_span}, pipe {pipe_span}"
    );
    let _ = dep;
}

#[test]
fn shared_hal_configuration_works() {
    // All Processes on one shared Controller (§6.5 "Shared HAL").
    let mut tb = Testbed::paper(53);
    let ctrls = tb.shared_controller(NodeId(2));
    let dep = deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    let client = tb.add_process("client", cpu(2), ctrls[2], FvClient::new(4096, 4, 5, 1));
    tb.start_process(client);
    tb.run();
    tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(c.samples.len(), 5);
        assert!(c.samples.iter().all(|s| s.all_matched));
    });
    let _ = dep;
}

#[test]
fn fork_join_overlaps_independent_stages() {
    // §3.4: the same Request primitives express fork/join. N independent
    // transfers forked concurrently must beat doing them one at a time.
    let mut tb = Testbed::paper(43);
    let ctrls = tb.controllers_per_node(false);
    let stages = 3usize;
    let size = 64 * 1024u64;
    for i in 0..stages {
        let node = (i % 3) as u32;
        let p = tb.add_process(
            &format!("stage{i}"),
            cpu(node),
            ctrls[node as usize],
            PipelineStage::new(i, size),
        );
        tb.start_process(p);
        tb.run();
    }
    let fj = tb.add_process(
        "forkjoin",
        cpu(0),
        ctrls[0],
        fractos_services::ForkJoinDriver::new(stages, size, 4),
    );
    tb.start_process(fj);
    tb.run();
    let fj_mean = tb.with_service::<fractos_services::ForkJoinDriver, _>(fj, |d| {
        assert_eq!(d.latencies.len(), 4);
        d.latencies.iter().map(|l| l.as_micros_f64()).sum::<f64>() / 4.0
    });

    // Sequential comparison: a chain through the same stages moves the
    // data stage-to-stage, strictly serially.
    let chain = tb.add_process("chain", cpu(0), ctrls[0], ChainDriver::new(stages, size, 4));
    tb.start_process(chain);
    tb.run();
    let chain_mean = tb.with_service::<ChainDriver, _>(chain, |d| {
        d.latencies.iter().map(|l| l.as_micros_f64()).sum::<f64>() / 4.0
    });

    assert!(
        fj_mean < chain_mean * 0.8,
        "fork/join ({fj_mean:.1} µs) must overlap what the chain serializes ({chain_mean:.1} µs)"
    );
}

#[test]
fn file_deletion_revokes_dax_handles_and_reclaims_volumes() {
    // §3.5's motivating scenario: freeing storage must *selectively and
    // immediately* revoke every capability to it — including DAX handles a
    // client still holds — and the block adaptor reclaims the volume once
    // its capability tree drains.
    let mut tb = Testbed::paper(47);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process(
        "fs",
        cpu(1),
        ctrls[1],
        FsService::new(FsMode::Dax, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();

    // Client creates a file and keeps its DAX handles.
    let cli = tb.add_process("cli", cpu(2), ctrls[2], FsClient::new(16 * 1024));
    tb.start_process(cli);
    tb.run();
    tb.with_service::<FsClient, _>(cli, |c| assert!(c.done && c.data_ok));

    // A second principal (could be the owner) deletes the file through the
    // FS.
    struct Deleter {
        pub extents_freed: Option<u64>,
    }
    impl Service for Deleter {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("fs.delete", |_s, res, fos| {
                let del = res.cid();
                fos.request_create_new(
                    TAG_T,
                    vec![imm(0)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        // File id 1 (the first created file).
                        fos.request_derive(del, vec![imm(1)], vec![cont], |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        });
                    },
                );
            });
        }
        fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
            self.extents_freed = imm_at(&req.imms, 1);
        }
    }
    let deleter = tb.add_process(
        "deleter",
        cpu(1),
        ctrls[1],
        Deleter {
            extents_freed: None,
        },
    );
    tb.start_process(deleter);
    tb.run();
    tb.with_service::<Deleter, _>(deleter, |d| {
        assert_eq!(d.extents_freed, Some(1), "one extent freed");
    });

    // The volume is gone from the device and counted as reaped.
    tb.with_service::<BlockAdaptor, _>(blk, |a| {
        assert_eq!(a.reaped_volumes, 1, "volume reclaimed after drain");
        assert_eq!(a.device().volume_size(1), None);
    });

    // The client's stale DAX read handle now fails with a revocation error.
    let rreq = tb.with_service::<FsClient, _>(cli, |c| c.fs_read.unwrap());
    let fos = tb.fos_of::<FsClient>(cli);
    fos.request_invoke(rreq, |s: &mut FsClient, res, _| {
        assert!(
            matches!(
                res,
                fractos_core::types::SyscallResult::Err(FosError::Cap(_))
            ),
            "revoked DAX handle must be rejected, got {res:?}"
        );
        s.done = true;
    });
    tb.poke(cli);
    tb.run();
}

#[test]
fn fs_staging_pool_grows_under_pressure() {
    // More concurrent I/Os than staging slots must degrade to allocation,
    // never to an error (earlier versions rejected the overflow).
    let (_, tput) = {
        // Reuse the bench-style client through a local runner: 12 in-flight
        // 4 KiB reads against the 8-slot pool.
        let mut tb = Testbed::paper(83);
        let ctrls = tb.controllers_per_node(false);
        let blk = tb.add_process(
            "blk",
            cpu(0),
            ctrls[0],
            BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
        );
        tb.start_process(blk);
        tb.run();
        let fs = tb.add_process(
            "fs",
            cpu(1),
            ctrls[1],
            FsService::new(FsMode::Mediated, "fs", "blk"),
        );
        tb.start_process(fs);
        tb.run();

        // 12 independent clients each fire one write+read roundtrip.
        let clients: Vec<_> = (0..12)
            .map(|i| {
                let c = tb.add_process(&format!("cli{i}"), cpu(2), ctrls[2], FsClient::new(4096));
                tb.start_process(c);
                c
            })
            .collect();
        tb.run();
        for c in clients {
            tb.with_service::<FsClient, _>(c, |x| {
                assert!(x.done && x.data_ok, "client under pressure must finish");
            });
        }
        (0.0, 0.0)
    };
    let _ = tput;
}
