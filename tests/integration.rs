//! Workspace-wide integration tests: whole-cluster properties that span the
//! simulator, fabric, capability layer, OS layer, devices, services and
//! baselines together.

use fractos::core::prelude::*;
use fractos::services::deploy::deploy_faceverify;
use fractos::services::faceverify::FvClient;
use fractos::services::FvConfig;

const IMG: u64 = 4096;

fn run_app(seed: u64, snic: bool, batch: u64, requests: u64, in_flight: u64) -> AppRun {
    let mut tb = Testbed::paper(seed);
    let ctrls = tb.controllers_per_node(snic);
    let dep = deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    tb.reset_traffic();
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        FvClient::new(IMG, batch, requests, in_flight),
    );
    tb.start_process(client);
    let t0 = tb.now();
    tb.run();
    let wall = tb.now().duration_since(t0);
    let (lat_mean, all_matched, served) = tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(c.samples.len() as u64, requests, "all requests answered");
        (
            c.samples
                .iter()
                .map(|s| s.latency().as_micros_f64())
                .sum::<f64>()
                / c.samples.len() as f64,
            c.samples.iter().all(|s| s.all_matched),
            c.samples.len() as u64,
        )
    });
    let gpu_kernels = tb.with_service::<fractos::devices::GpuAdaptor, _>(dep.gpu, |g| {
        g.device().kernels_executed()
    });
    let traffic = tb.traffic();
    AppRun {
        lat_mean,
        wall_us: wall.as_micros_f64(),
        all_matched,
        served,
        gpu_kernels,
        net_bytes: traffic.network_bytes(),
        net_msgs: traffic.network_msgs(),
        steps: tb.sim.steps(),
    }
}

#[derive(Debug, PartialEq)]
struct AppRun {
    lat_mean: f64,
    wall_us: f64,
    all_matched: bool,
    served: u64,
    gpu_kernels: u64,
    net_bytes: u64,
    net_msgs: u64,
    steps: u64,
}

#[test]
fn full_application_is_deterministic() {
    let a = run_app(5, false, 8, 6, 2);
    let b = run_app(5, false, 8, 6, 2);
    assert_eq!(a, b, "same seed must reproduce the run exactly");
}

#[test]
fn full_application_verifies_identities() {
    let r = run_app(6, false, 16, 8, 1);
    assert!(r.all_matched);
    assert_eq!(r.served, 8);
    assert_eq!(r.gpu_kernels, 8, "one kernel per request");
}

#[test]
fn snic_controllers_cost_more_than_cpu_controllers() {
    // Table 3 / §6: sNIC deployments add latency but still work end to end.
    let cpu_run = run_app(7, false, 8, 6, 1);
    let snic_run = run_app(7, true, 8, 6, 1);
    assert!(cpu_run.all_matched && snic_run.all_matched);
    assert!(
        snic_run.lat_mean > cpu_run.lat_mean,
        "sNIC {:.1} µs should exceed CPU {:.1} µs",
        snic_run.lat_mean,
        cpu_run.lat_mean
    );
    // But not catastrophically (the paper: still competitive end to end).
    assert!(snic_run.lat_mean < cpu_run.lat_mean * 2.0);
}

#[test]
fn pipelining_increases_throughput_until_the_gpu_saturates() {
    // Fig 13 shape: wall-clock time for a fixed request count shrinks with
    // in-flight depth, then flattens at the GPU bound.
    let seq = run_app(8, false, 16, 12, 1);
    let four = run_app(8, false, 16, 12, 4);
    assert!(
        four.wall_us < seq.wall_us * 0.75,
        "4 in flight should overlap: {} vs {}",
        seq.wall_us,
        four.wall_us
    );
    // The GPU executes one kernel per request regardless.
    assert_eq!(seq.gpu_kernels, four.gpu_kernels);
}

#[test]
fn network_traffic_scales_with_batch_not_request_count_overhead() {
    // Per-request network bytes should be dominated by 2 × batch × img
    // (queries in, references SSD→GPU), plus bounded control overhead.
    let r = run_app(9, false, 8, 10, 1);
    let payload = 2 * 8 * IMG * 10;
    assert!(r.net_bytes as f64 > payload as f64 * 0.9);
    assert!(
        (r.net_bytes as f64) < payload as f64 * 1.6,
        "control overhead out of bounds: {} vs payload {}",
        r.net_bytes,
        payload
    );
}

#[test]
fn gpu_context_reaped_when_frontend_dies() {
    // §3.6 resource management: the GPU adaptor armed monitor_delegate on
    // its per-context Requests; when the (only) holder dies, the context is
    // reaped.
    let mut tb = Testbed::paper(11);
    let ctrls = tb.controllers_per_node(false);
    let dep = deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    tb.with_service::<fractos::devices::GpuAdaptor, _>(dep.gpu, |g| {
        assert_eq!(g.reaped_contexts, 0);
    });
    tb.kill_process(dep.frontend);
    tb.run();
    tb.with_service::<fractos::devices::GpuAdaptor, _>(dep.gpu, |g| {
        assert_eq!(
            g.reaped_contexts, 1,
            "context must be reaped on client death"
        );
    });
}

#[test]
fn app_survives_storage_node_failure_with_errors_not_hangs() {
    let mut tb = Testbed::paper(12);
    let ctrls = tb.controllers_per_node(false);
    let dep = deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    // Kill the block adaptor: subsequent requests must complete with empty
    // (error) replies rather than wedging the cluster.
    tb.kill_process(dep.blk);
    tb.run();
    let client = tb.add_process("client", cpu(2), ctrls[2], FvClient::new(IMG, 4, 3, 1));
    tb.start_process(client);
    tb.run();
    tb.with_service::<FvClient, _>(client, |c| {
        assert!(
            !c.samples.is_empty(),
            "at least the first request must resolve (as an error)"
        );
        assert!(
            c.samples.iter().all(|s| !s.all_matched),
            "requests after storage death cannot verify"
        );
    });
}

#[test]
fn full_fig2_ring_stores_results_on_the_output_ssd() {
    // The complete Fig 2 scenario: read from the input SSD into the GPU,
    // verify, write the distances through the *composed* output FS onto
    // the output SSD, whose completion answers the client directly.
    let mut tb = Testbed::paper(14);
    let ctrls = tb.controllers_per_node(false);
    let cfg = FvConfig {
        store_results: true,
        ..FvConfig::default()
    };
    let dep = deploy_faceverify(&mut tb, &ctrls, cfg, 256);
    let (oblk, _ofs, _creator) = dep.output.expect("output tier deployed");

    let batch = 8u64;
    let mut client = FvClient::new(IMG, batch, 3, 1);
    client.expect_stored = true;
    let client = tb.add_process("client", cpu(2), ctrls[2], client);
    tb.start_process(client);
    tb.run();

    tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(c.samples.len(), 3);
        assert!(
            c.samples.iter().all(|s| s.all_matched),
            "every request must be acknowledged by the output device"
        );
    });

    // The distances really are on the output SSD: requests are sequential,
    // so they all used slot 0 (output offset 0). The queries are noisy
    // captures of the true identities, so every distance must be a match.
    let stored = tb.with_service::<fractos::devices::BlockAdaptor, _>(oblk, |a| {
        a.device_mut().read(1, 0, batch).expect("output volume")
    });
    assert!(
        stored
            .iter()
            .all(|&d| d < fractos::services::matcher::MATCH_THRESHOLD),
        "stored distances must all be matches: {stored:?}"
    );
}
