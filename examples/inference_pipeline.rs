//! The paper's motivating scenario (Fig 2): a cloud inference service on
//! disaggregated storage and GPU, run both ways.
//!
//! The FractOS deployment chains client → frontend → SSD → GPU → frontend
//! → client with a single NVMe→GPU data transfer; the baseline
//! (NFS + NVMe-oF + rCUDA) stars everything through the frontend. The
//! example prints per-request latency and the measured network traffic of
//! both, plus the paper's analytic message-complexity model.
//!
//! Run with: `cargo run --release --example inference_pipeline`

use fractos_baselines::faceverify::{deploy_baseline, BaselineClient, Start};
use fractos_baselines::paper_runtime;
use fractos_core::msgmodel;
use fractos_core::prelude::*;
use fractos_net::{Fabric, NetParams, NodeId, Topology};
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::FvConfig;
use fractos_sim::{Shared, SimDuration};

const IMG: u64 = 4096;
const BATCH: u64 = 8;
const REQUESTS: u64 = 20;

fn main() {
    // ---- FractOS: fully distributed (green path in Fig 2) -------------
    let mut tb = Testbed::paper(7);
    let ctrls = tb.controllers_per_node(false);
    deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    tb.reset_traffic();
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        FvClient::new(IMG, BATCH, REQUESTS, 1),
    );
    tb.start_process(client);
    tb.run();
    let (fos_lat, fos_ok) = tb.with_service::<FvClient, _>(client, |c| {
        let mean = c
            .samples
            .iter()
            .map(|s| s.latency().as_micros_f64())
            .sum::<f64>()
            / c.samples.len() as f64;
        (mean, c.samples.iter().all(|s| s.all_matched))
    });
    let fos_traffic = tb.traffic();

    // ---- Baseline: centralized star (red path in Fig 2) ----------------
    let mut sim = paper_runtime(7);
    let fabric = Shared::new(Fabric::new(Topology::paper_testbed(), NetParams::paper()));
    let dep = deploy_baseline(sim.as_mut(), &fabric, IMG, 256);
    let bc = sim.add_actor_on(
        2,
        "client",
        Box::new(BaselineClient::new(
            fractos_net::Endpoint::cpu(NodeId(2)),
            dep.frontend_peer,
            fabric.clone(),
            IMG,
            BATCH,
            REQUESTS,
            1,
        )),
    );
    sim.post(SimDuration::ZERO, bc, Start);
    sim.run();
    let (base_lat, base_ok) = sim.with_actor::<BaselineClient, _>(bc, |c| {
        let mean = c
            .samples
            .iter()
            .map(|s| s.latency().as_micros_f64())
            .sum::<f64>()
            / c.samples.len() as f64;
        (mean, c.samples.iter().all(|s| s.all_matched))
    });
    let base_traffic = fabric.borrow().stats().clone();

    // ---- Report ---------------------------------------------------------
    assert!(fos_ok && base_ok, "both systems must verify correctly");
    println!("inference pipeline, batch {BATCH} × {IMG} B images, {REQUESTS} requests\n");
    println!("                    latency      net bytes    net msgs   data msgs");
    println!(
        "  FractOS (chain)   {:8.1} µs  {:>10}  {:>9}  {:>9}",
        fos_lat,
        fos_traffic.network_bytes(),
        fos_traffic.network_msgs(),
        fos_traffic.network_data_msgs(),
    );
    println!(
        "  Baseline (star)   {:8.1} µs  {:>10}  {:>9}  {:>9}",
        base_lat,
        base_traffic.network_bytes(),
        base_traffic.network_msgs(),
        base_traffic.network_data_msgs(),
    );
    println!(
        "\n  speedup {:.2}×, traffic reduction {:.2}×",
        base_lat / fos_lat,
        base_traffic.network_bytes() as f64 / fos_traffic.network_bytes() as f64
    );
    println!(
        "\nanalytic model (§2.1): star {} msgs vs chain {} msgs for 3 services (up to {:.1}×);",
        msgmodel::star_messages(3),
        msgmodel::chain_messages(3),
        msgmodel::flat_reduction(3)
    );
    println!(
        "control messages per request (§6.5): {} baseline vs {} FractOS",
        msgmodel::FACEVERIF_BASELINE_CONTROL_MSGS,
        msgmodel::FACEVERIF_FRACTOS_CONTROL_MSGS
    );
}
