//! Quickstart: a minimal FractOS cluster in five minutes.
//!
//! Builds the paper's 3-node testbed, runs one Controller per node, and
//! wires two Processes: an `echo` service that publishes an RPC endpoint
//! through the bootstrap registry, and a client that discovers it, refines
//! it with arguments and a reply continuation, and invokes it — the
//! continuation-passing Request machinery of §3.3–§3.4 end to end.
//!
//! Run with: `cargo run --example quickstart`

use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};

/// Tag of the echo service's RPC.
const TAG_ECHO: u64 = 0x1111;
/// Tag of the client's reply continuation.
const TAG_REPLY: u64 = 0x2222;

/// A service that echoes its immediate argument back, incremented.
struct EchoService {
    served: u64,
}

impl Service for EchoService {
    fn on_start(&mut self, fos: &Fos<Self>) {
        // Create the RPC endpoint and publish it for discovery.
        fos.request_create_new(TAG_ECHO, vec![], vec![], |_s, res, fos| {
            fos.kv_put("echo", res.cid(), |_, res, _| {
                assert!(res.is_ok(), "publishing the endpoint failed");
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        self.served += 1;
        // Client-appended immediates: [value]; caps: [reply continuation].
        let value = imm_at(&req.imms, 0).expect("value argument");
        let reply = req.caps[0];
        println!(
            "[echo]   received value {value}, replying with {}",
            value + 1
        );
        // Replying *is* invoking the continuation, refined with the result.
        fos.reply_via(reply, vec![imm(value + 1)], vec![]);
    }
}

/// A client that calls the echo service three times.
struct EchoClient {
    next: u64,
    echo: Option<fractos_cap::Cid>,
    t_sent: SimTime,
}

impl EchoClient {
    fn call(&mut self, fos: &Fos<Self>) {
        let echo = self.echo.expect("discovered");
        let value = self.next;
        self.t_sent = fos.now();
        // Reply continuation → derive the endpoint with [value, reply] →
        // invoke. The service never learns who we are; it just invokes the
        // Request we handed it (§3.4 encapsulation).
        fos.request_create_new(TAG_REPLY, vec![], vec![], move |_s, res, fos| {
            let reply = res.cid();
            fos.request_derive(echo, vec![imm(value)], vec![reply], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        });
    }
}

impl Service for EchoClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("echo", |s: &mut Self, res, fos| {
            s.echo = Some(res.cid());
            s.call(fos);
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let answer = imm_at(&req.imms, 0).expect("answer");
        let rtt = fos.now().duration_since(self.t_sent);
        println!("[client] got {answer} after {rtt}");
        self.next += 1;
        if self.next < 3 {
            self.call(fos);
        }
    }
}

fn main() {
    // The paper's testbed: 3 nodes, 10 Gbps fabric, SmartNICs available.
    let mut tb = Testbed::paper(42);
    // One FractOS Controller per node, on the host CPUs. (Try
    // `controllers_per_node(true)` to move them onto the SmartNICs and
    // watch the latencies grow by the Table 3 deltas.)
    let ctrls = tb.controllers_per_node(false);

    let svc = tb.add_process("echo", cpu(0), ctrls[0], EchoService { served: 0 });
    tb.start_process(svc);
    tb.run();

    let cli = tb.add_process(
        "client",
        cpu(1),
        ctrls[1],
        EchoClient {
            next: 0,
            echo: None,
            t_sent: SimTime::ZERO,
        },
    );
    tb.start_process(cli);
    tb.run();

    tb.with_service::<EchoService, _>(svc, |s| assert_eq!(s.served, 3));
    let stats = tb.traffic();
    println!(
        "\ntotal virtual time: {}, network messages: {}, network bytes: {}",
        tb.now(),
        stats.network_msgs(),
        stats.network_bytes()
    );
}
