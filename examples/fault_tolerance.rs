//! Failure translation and capability monitors (§3.6).
//!
//! FractOS turns failures into capability revocations: a provider watches
//! its delegations drain with `monitor_delegate`; a client watches a
//! provider vanish with `monitor_receive`; a Controller reboot stales every
//! capability it ever minted. This example stages all three.
//!
//! Run with: `cargo run --example fault_tolerance`

use fractos_cap::Cid;
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_net::FaultPlan;

const TAG_SVC: u64 = 0x4444;

/// A provider that publishes an endpoint and monitors its delegations.
struct Provider {
    pub drained: bool,
}

impl Service for Provider {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.request_create_new(TAG_SVC, vec![], vec![], |_s, res, fos| {
            let cid = res.cid();
            fos.call(
                Syscall::MonitorDelegate {
                    cid,
                    callback_id: 1,
                },
                move |_s, res, fos| {
                    assert!(res.is_ok());
                    fos.kv_put("svc", cid, |_, _, _| {});
                },
            );
        });
    }
    fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
    fn on_monitor(&mut self, cb: MonitorCb, _fos: &Fos<Self>) {
        if matches!(cb, MonitorCb::DelegateDrained { callback_id: 1 }) {
            println!("[provider] all client handles gone — freeing resources");
            self.drained = true;
        }
    }
}

/// A client that holds the endpoint and watches the provider's health.
struct Watcher {
    pub cap: Option<Cid>,
    pub provider_lost: bool,
}

impl Service for Watcher {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("svc", |s: &mut Self, res, fos| {
            let cid = res.cid();
            s.cap = Some(cid);
            fos.call(
                Syscall::MonitorReceive {
                    cid,
                    callback_id: 2,
                },
                |_, res, _| assert!(res.is_ok()),
            );
        });
    }
    fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
    fn on_monitor(&mut self, cb: MonitorCb, _fos: &Fos<Self>) {
        if matches!(cb, MonitorCb::Receive { callback_id: 2 }) {
            println!("[watcher]  provider capability revoked — failing over");
            self.provider_lost = true;
        }
    }
}

fn main() {
    // ---- Scene 1: a client revokes its handle; the provider notices. ----
    println!("scene 1: monitor_delegate — resource reclamation");
    let mut tb = Testbed::paper(99);
    let ctrls = tb.controllers_per_node(false);
    let provider = tb.add_process("provider", cpu(0), ctrls[0], Provider { drained: false });
    tb.start_process(provider);
    tb.run();
    let watcher = tb.add_process(
        "watcher",
        cpu(1),
        ctrls[1],
        Watcher {
            cap: None,
            provider_lost: false,
        },
    );
    tb.start_process(watcher);
    tb.run();

    let cap = tb.with_service::<Watcher, _>(watcher, |w| w.cap.unwrap());
    let fos = tb.fos_of::<Watcher>(watcher);
    fos.call(Syscall::CapRevoke { cid: cap }, |_, res, _| {
        assert!(res.is_ok());
    });
    tb.poke(watcher);
    tb.run();
    tb.with_service::<Provider, _>(provider, |p| assert!(p.drained));

    // ---- Scene 2: the provider dies; the watcher notices. ---------------
    println!("\nscene 2: monitor_receive — failure translation");
    let mut tb = Testbed::paper(100);
    let ctrls = tb.controllers_per_node(false);
    let provider = tb.add_process("provider", cpu(0), ctrls[0], Provider { drained: false });
    tb.start_process(provider);
    tb.run();
    let watcher = tb.add_process(
        "watcher",
        cpu(1),
        ctrls[1],
        Watcher {
            cap: None,
            provider_lost: false,
        },
    );
    tb.start_process(watcher);
    tb.run();
    println!("[harness]  killing the provider process");
    tb.kill_process(provider);
    tb.run();
    tb.with_service::<Watcher, _>(watcher, |w| assert!(w.provider_lost));

    // ---- Scene 3: Controller reboot stales old capabilities. ------------
    println!("\nscene 3: reboot epochs — implicit revocation");
    let mut tb = Testbed::paper(101);
    let ctrls = tb.controllers_per_node(false);
    let provider = tb.add_process("provider", cpu(0), ctrls[0], Provider { drained: false });
    tb.start_process(provider);
    tb.run();
    let watcher = tb.add_process(
        "watcher",
        cpu(1),
        ctrls[1],
        Watcher {
            cap: None,
            provider_lost: false,
        },
    );
    tb.start_process(watcher);
    tb.run();
    println!("[harness]  rebooting controller 0 (epoch bump)");
    tb.reboot_controller(ctrls[0]);
    tb.run();
    let cap = tb.with_service::<Watcher, _>(watcher, |w| w.cap.unwrap());
    let fos = tb.fos_of::<Watcher>(watcher);
    fos.request_invoke(cap, |_, res, _| {
        println!("[watcher]  invoking the stale capability: {res:?}");
        assert!(
            matches!(
                res,
                SyscallResult::Err(FosError::Cap(fractos_cap::CapError::StaleEpoch(_)))
            ),
            "stale-epoch detection must fire"
        );
    });
    tb.poke(watcher);
    tb.run();

    // ---- Scene 4: a partition looks like death — until it heals. --------
    println!("\nscene 4: watchdog — partition detection and post-heal recovery");
    let mut tb = Testbed::paper(102);
    let ctrls = tb.controllers_per_node(false);
    let provider = tb.add_process("provider", cpu(0), ctrls[0], Provider { drained: false });
    tb.start_process(provider);
    tb.run();
    let wd = tb.start_watchdog(NodeId(2));

    // Node 0 drops off the control plane at 100 µs; the links heal at 2 ms.
    // The watchdog cannot tell a partition from a crash (§3.6) — it
    // declares the Controller failed either way — but its recovery probes
    // notice the heal and broadcast `PeerRecovered`.
    let from = SimTime::from_nanos(100_000);
    let heal = Some(SimTime::from_nanos(2_000_000));
    tb.install_fault_plan(
        FaultPlan::new()
            .partition(NodeId(0), NodeId(1), from, heal)
            .partition(NodeId(0), NodeId(2), from, heal),
        102,
    );
    println!("[harness]  partitioning node 0 from the cluster (heals at 2 ms)");
    tb.run_until(SimTime::from_nanos(1_500_000));
    tb.sim
        .with_actor::<fractos_core::WatchdogActor, _>(wd, |w| {
            println!(
                "[watchdog] declared unreachable: {:?} (after missed pings)",
                w.detected
            );
            assert_eq!(w.detected, vec![ctrls[0]], "partition must be detected");
        });
    assert!(
        tb.with_controller(ctrls[1], |c| c.peer_dead(ctrls[0])),
        "peers must run failure translation on the verdict"
    );

    tb.run_until(SimTime::from_nanos(4_000_000));
    tb.sim
        .with_actor::<fractos_core::WatchdogActor, _>(wd, |w| {
            println!("[watchdog] recovered after heal: {:?}", w.recovered);
            assert_eq!(w.recovered, vec![ctrls[0]], "heal must be noticed");
        });
    assert!(
        !tb.with_controller(ctrls[1], |c| c.peer_dead(ctrls[0])),
        "PeerRecovered must clear the dead verdict"
    );

    // The once-partitioned Controller serves the cluster again: a late
    // client on another node reaches the provider's endpoint through it.
    let late = tb.add_process(
        "late",
        cpu(1),
        ctrls[1],
        Watcher {
            cap: None,
            provider_lost: false,
        },
    );
    tb.start_process(late);
    tb.run_until(SimTime::from_nanos(6_000_000));
    tb.with_service::<Watcher, _>(late, |w| {
        assert!(w.cap.is_some(), "post-heal lookup through ctrl 0 failed");
        assert!(
            !w.provider_lost,
            "provider wrongly reported lost after heal"
        );
    });
    println!("[watcher]  post-heal lookup through the recovered controller ok");

    // ---- Scene 5: crash-restart — death declaration, then rebirth. ------
    println!("\nscene 5: crash-restart — dead-gate, revocation, fresh epoch");
    let mut tb = Testbed::paper(103);
    let ctrls = tb.controllers_per_node(false);
    let provider = tb.add_process("provider", cpu(1), ctrls[1], Provider { drained: false });
    tb.start_process(provider);
    tb.run();
    let watcher = tb.add_process(
        "watcher",
        cpu(2),
        ctrls[2],
        Watcher {
            cap: None,
            provider_lost: false,
        },
    );
    tb.start_process(watcher);
    tb.run();
    let wd = tb.start_watchdog(NodeId(0));

    // Node 1 crash-stops at 500 µs and comes back at 2.5 ms. Unlike the
    // scene-4 partition, the node really dies: its Process's state is gone
    // for good, and the rebooted Controller returns with a fresh epoch
    // that stales every capability it minted before the crash.
    println!("[harness]  crashing node 1 at 500 us (restarts at 2.5 ms)");
    tb.install_fault_plan(
        FaultPlan::new().crash_restart_node(
            NodeId(1),
            SimTime::from_nanos(500_000),
            SimTime::from_nanos(2_500_000),
        ),
        103,
    );
    tb.run_until(SimTime::from_nanos(2_000_000));
    tb.sim
        .with_actor::<fractos_core::WatchdogActor, _>(wd, |w| {
            println!("[watchdog] declared dead: {:?}", w.detected);
            assert_eq!(w.detected, vec![ctrls[1]], "crash must be detected");
        });
    // §3.6 translation at the survivors: the dead Controller's capability
    // is scrubbed from the watcher's space, so using it fails typed
    // instead of hanging on a corpse.
    assert!(
        !tb.with_controller(ctrls[2], |c| c.holds_cap_of(watcher, ctrls[1])),
        "dead Controller's capability must be revoked at the survivor"
    );

    tb.run_until(SimTime::from_nanos(4_000_000));
    tb.sim
        .with_actor::<fractos_core::WatchdogActor, _>(wd, |w| {
            println!(
                "[watchdog] answering again after restart: {:?}",
                w.recovered
            );
            assert_eq!(w.recovered, vec![ctrls[1]], "restart must be noticed");
        });
    assert!(
        !tb.with_controller(ctrls[2], |c| c.peer_dead(ctrls[1])),
        "restart must clear the dead verdict"
    );
    // The crash destroyed the Process for good — a restart revives the
    // Controller (with a fresh epoch), never the Processes it managed.
    assert!(
        !tb.dir.borrow().proc(provider).unwrap().alive,
        "a crashed Process must stay dead across the Controller restart"
    );

    // The reborn Controller serves new work: deploy a fresh provider on
    // the restarted node and reach it from another node.
    let provider2 = tb.add_process("provider2", cpu(1), ctrls[1], Provider { drained: false });
    tb.start_process(provider2);
    tb.run_until(SimTime::from_nanos(6_000_000));
    let late = tb.add_process(
        "late",
        cpu(0),
        ctrls[0],
        Watcher {
            cap: None,
            provider_lost: false,
        },
    );
    tb.start_process(late);
    tb.run_until(SimTime::from_nanos(8_000_000));
    tb.with_service::<Watcher, _>(late, |w| {
        assert!(w.cap.is_some(), "post-restart deploy unreachable");
    });
    println!("[watcher]  fresh deployment on the reborn node reachable");

    println!("\nall five failure-translation paths verified.");
}
