//! The storage stack in its three data-path modes (§5, Fig 10).
//!
//! A client writes and reads 64 KiB through the extent-based FS over the
//! NVMe block adaptor, once per mode:
//!
//! * mediated — every byte moves through the FS Process (the paper's "FS");
//! * compose  — the FS refines the block-device Request with the client's
//!   buffer and continuation (§3.4), staying on the control path only;
//! * DAX      — the client holds the block-device Requests and bypasses the
//!   FS entirely after open.
//!
//! Run with: `cargo run --example storage_dax`

use fractos_cap::Cid;
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, NvmeParams};
use fractos_services::fs::{FsMode, FsService};

const TAG: u64 = 0x3333;
const IO: u64 = 64 * 1024;

/// Create → write 64 KiB → read it back, recording the read latency.
struct Bench {
    read_req: Option<Cid>,
    write_req: Option<Cid>,
    buf: Option<u64>,
    read_started: SimTime,
    pub read_latency: Option<SimDuration>,
    pub ok: bool,
}

impl Bench {
    fn new() -> Self {
        Bench {
            read_req: None,
            write_req: None,
            buf: None,
            read_started: SimTime::ZERO,
            read_latency: None,
            ok: false,
        }
    }

    fn pattern() -> Vec<u8> {
        (0..IO).map(|i| (i % 251) as u8).collect()
    }
}

impl Service for Bench {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("fs.create", |_s, res, fos| {
            let create = res.cid();
            fos.request_create_new(TAG, vec![imm(0)], vec![], move |_s: &mut Self, res, fos| {
                let cont = res.cid();
                fos.request_derive(create, vec![imm(IO)], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        match imm_at(&req.imms, 0).unwrap() {
            0 => {
                // Handles arrive: [read, write] in every mode.
                self.read_req = Some(req.caps[0]);
                self.write_req = Some(req.caps[1]);
                let wreq = req.caps[1];
                let addr = fos.mem_alloc(IO);
                fos.mem_write(addr, 0, &Bench::pattern()).unwrap();
                fos.memory_create(
                    addr,
                    IO,
                    fractos_cap::Perms::RW,
                    move |_s: &mut Self, res, fos| {
                        let src = res.cid();
                        fos.request_create_new(
                            TAG,
                            vec![imm(1)],
                            vec![],
                            move |_s: &mut Self, res, fos| {
                                let ok = res.cid();
                                fos.request_create_new(
                                    TAG,
                                    vec![imm(9)],
                                    vec![],
                                    move |_s: &mut Self, res, fos| {
                                        let err = res.cid();
                                        fos.request_derive(
                                            wreq,
                                            vec![imm(0), imm(IO)],
                                            vec![src, ok, err],
                                            |_s, res, fos| {
                                                fos.request_invoke(res.cid(), |_, res, _| {
                                                    assert!(res.is_ok())
                                                });
                                            },
                                        );
                                    },
                                );
                            },
                        );
                    },
                );
            }
            1 => {
                // Write done; time the read.
                let rreq = self.read_req.unwrap();
                let addr = fos.mem_alloc(IO);
                self.buf = Some(addr);
                self.read_started = fos.now();
                fos.memory_create(
                    addr,
                    IO,
                    fractos_cap::Perms::RW,
                    move |_s: &mut Self, res, fos| {
                        let dst = res.cid();
                        fos.request_create_new(
                            TAG,
                            vec![imm(2)],
                            vec![],
                            move |_s: &mut Self, res, fos| {
                                let ok = res.cid();
                                fos.request_create_new(
                                    TAG,
                                    vec![imm(9)],
                                    vec![],
                                    move |_s: &mut Self, res, fos| {
                                        let err = res.cid();
                                        fos.request_derive(
                                            rreq,
                                            vec![imm(0), imm(IO)],
                                            vec![dst, ok, err],
                                            |_s, res, fos| {
                                                fos.request_invoke(res.cid(), |_, res, _| {
                                                    assert!(res.is_ok())
                                                });
                                            },
                                        );
                                    },
                                );
                            },
                        );
                    },
                );
            }
            2 => {
                self.read_latency = Some(fos.now().duration_since(self.read_started));
                let got = fos.mem_read(self.buf.unwrap(), 0, IO).unwrap();
                self.ok = got == Bench::pattern();
            }
            _ => panic!("storage error"),
        }
    }
}

fn run(mode: FsMode) -> (SimDuration, bool) {
    let mut tb = Testbed::paper(13);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process("fs", cpu(0), ctrls[0], FsService::new(mode, "fs", "blk"));
    tb.start_process(fs);
    tb.run();
    let bench = tb.add_process("bench", cpu(2), ctrls[2], Bench::new());
    tb.start_process(bench);
    tb.run();
    tb.with_service::<Bench, _>(bench, |b| (b.read_latency.expect("read completed"), b.ok))
}

fn main() {
    println!("64 KiB random read latency through the storage stack:\n");
    for mode in [FsMode::Mediated, FsMode::Compose, FsMode::Dax] {
        let (lat, ok) = run(mode);
        assert!(ok, "data corrupted in {mode:?}");
        println!("  {mode:?}: {lat}");
    }
    println!("\nmediated pays two network transfers per read; compose and DAX");
    println!("cut through the FS (§3.4 / §5) and pay one.");
}
