//! Continuous telemetry: sample a running system in virtual time.
//!
//! Reuses the quickstart echo shape, but arms the telemetry plane before
//! the measured phase. Services record counters, gauges and latency
//! samples through `Fos::telemetry_*`; the fabric contributes per-link
//! byte/message series on its own; and the engine adds `runtime.*`
//! self-profiling series (backend-specific, surfaced by the Fig 2 bench
//! table rather than here). After the run the events are derived into
//! windowed time series and exported three ways: a terminal summary
//! table, JSONL rows, and a Prometheus text scrape.
//!
//! The plane is off by default and costs nothing while off — benches can
//! arm it from the environment with `FRACTOS_TELEMETRY=1` (or a period
//! such as `FRACTOS_TELEMETRY=200us`) without touching their results.
//!
//! Run with: `cargo run --example telemetry`

use fractos::obs::TelemetryReport;
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_sim::{SimDuration, SimTime};

/// Tag of the echo service's RPC.
const TAG_ECHO: u64 = 0x1111;
/// Tag of the client's reply continuation.
const TAG_REPLY: u64 = 0x2222;

/// An echo service that counts the requests it serves.
struct EchoService;

impl Service for EchoService {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.request_create_new(TAG_ECHO, vec![], vec![], |_s, res, fos| {
            fos.kv_put("echo", res.cid(), |_, res, _| {
                assert!(res.is_ok(), "publishing the endpoint failed");
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        // A counter delta: folded per sampling window into a rate series.
        fos.telemetry_count("app.echo.served", 1);
        let value = imm_at(&req.imms, 0).expect("value argument");
        fos.reply_via(req.caps[0], vec![imm(value + 1)], vec![]);
    }
}

/// A client that keeps a few calls in flight and records its own latency.
struct MeteredClient {
    target: u64,
    done: u64,
    inflight: u64,
    issued_at: Vec<SimTime>,
    echo: Option<fractos_cap::Cid>,
}

impl MeteredClient {
    fn call(&mut self, fos: &Fos<Self>) {
        let echo = self.echo.expect("discovered");
        self.inflight += 1;
        // A gauge: the level at each change, last value per window wins.
        fos.telemetry_gauge("app.client.inflight", self.inflight);
        self.issued_at.push(fos.now());
        fos.request_create_new(TAG_REPLY, vec![], vec![], move |_s, res, fos| {
            let reply = res.cid();
            fos.request_derive(echo, vec![imm(7)], vec![reply], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        });
    }
}

impl Service for MeteredClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("echo", |s: &mut Self, res, fos| {
            s.echo = Some(res.cid());
            for _ in 0..4 {
                s.call(fos);
            }
        });
    }

    fn on_request(&mut self, _req: IncomingRequest, fos: &Fos<Self>) {
        self.done += 1;
        self.inflight -= 1;
        fos.telemetry_gauge("app.client.inflight", self.inflight);
        // A sample: folded into a streaming histogram per window.
        if let Some(t0) = self.issued_at.get((self.done - 1) as usize) {
            let lat = fos.now().duration_since(*t0);
            fos.telemetry_sample("app.client.latency_ns", lat.as_nanos());
        }
        if self.done + self.inflight < self.target {
            self.call(fos);
        }
    }
}

fn main() {
    let mut tb = Testbed::paper(42);
    let ctrls = tb.controllers_per_node(false);

    let svc = tb.add_process("echo", cpu(0), ctrls[0], EchoService);
    tb.start_process(svc);
    tb.run();

    // Arm the plane only for the measured phase: boot traffic above is
    // invisible, everything below is sampled in 20 µs virtual-time
    // windows. Disabled runs skip every recording branch, so the
    // simulation itself is bit-identical with the plane on or off.
    let period = SimDuration::from_nanos(20_000);
    tb.enable_telemetry(period);

    let cli = tb.add_process(
        "client",
        cpu(1),
        ctrls[1],
        MeteredClient {
            target: 32,
            done: 0,
            inflight: 0,
            issued_at: Vec::new(),
            echo: None,
        },
    );
    tb.start_process(cli);
    tb.run();

    // Derivation is a pure function of the recorded events: counters sum
    // per window, gauges keep the last level, samples fold into streaming
    // histograms with exact-bucket tail quantiles. Only the workload-level
    // series are shown here: the `runtime.*` self-profile describes the
    // engine that happened to execute the run (shard layout, queue
    // depths), so it is backend-specific by design and this output must
    // stay byte-identical across `FRACTOS_RUNTIME` settings.
    let events = tb.take_telemetry();
    let report = TelemetryReport::derive(&events, period);

    println!("summary (workload series):");
    print!("{}", report.summary_table(false));

    println!("\nJSONL rows (first 8, workload series only):");
    for line in report.jsonl(false).lines().take(8) {
        println!("  {line}");
    }

    println!("\nPrometheus scrape:");
    for line in report.prometheus(false).lines() {
        println!("  {line}");
    }
}
