//! Causal tracing: capture and analyze the span tree of a request.
//!
//! Reuses the quickstart echo service, but switches on span recording and
//! marks each client call as a top-level request (`Fos::trace_root`). After
//! the run it prints the raw span tree, the per-phase latency attribution
//! (network / control plane / device), and writes a Chrome Trace Event
//! file loadable in Perfetto or `chrome://tracing`.
//!
//! Run with: `cargo run --example tracing`

use fractos::obs::{aggregate, analyze, chrome_trace};
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_sim::ActorId;

/// Tag of the echo service's RPC.
const TAG_ECHO: u64 = 0x1111;
/// Tag of the client's reply continuation.
const TAG_REPLY: u64 = 0x2222;

/// A service that echoes its immediate argument back, incremented.
struct EchoService;

impl Service for EchoService {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.request_create_new(TAG_ECHO, vec![], vec![], |_s, res, fos| {
            fos.kv_put("echo", res.cid(), |_, res, _| {
                assert!(res.is_ok(), "publishing the endpoint failed");
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let value = imm_at(&req.imms, 0).expect("value argument");
        fos.reply_via(req.caps[0], vec![imm(value + 1)], vec![]);
    }
}

/// A client that calls the echo service twice, rooting a span tree per call.
struct TracedClient {
    next: u64,
    echo: Option<fractos_cap::Cid>,
}

impl TracedClient {
    fn call(&mut self, fos: &Fos<Self>) {
        let echo = self.echo.expect("discovered");
        let value = self.next;
        // Everything caused by the next syscall — fabric hops, Controller
        // work, the service's reply — lands in one span tree.
        fos.trace_root();
        fos.request_create_new(TAG_REPLY, vec![], vec![], move |_s, res, fos| {
            let reply = res.cid();
            fos.request_derive(echo, vec![imm(value)], vec![reply], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        });
    }
}

impl Service for TracedClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("echo", |s: &mut Self, res, fos| {
            s.echo = Some(res.cid());
            s.call(fos);
        });
    }

    fn on_request(&mut self, _req: IncomingRequest, fos: &Fos<Self>) {
        self.next += 1;
        if self.next < 2 {
            self.call(fos);
        }
    }
}

fn main() {
    let mut tb = Testbed::paper(42);
    let ctrls = tb.controllers_per_node(false);

    let svc = tb.add_process("echo", cpu(0), ctrls[0], EchoService);
    tb.start_process(svc);
    tb.run();

    // Enable recording only for the measured phase: boot traffic above
    // records nothing, and each `trace_root` below starts one tree.
    tb.sim.enable_spans();

    let cli = tb.add_process(
        "client",
        cpu(1),
        ctrls[1],
        TracedClient {
            next: 0,
            echo: None,
        },
    );
    tb.start_process(cli);
    tb.run();

    let spans = tb.sim.take_spans();
    println!("captured {} spans:\n", spans.len());
    for s in &spans {
        let marker = if s.parent == 0 { "root" } else { "    " };
        println!(
            "  {marker} [{:>9} .. {:>9}] {:<10} {:<14} actor#{} trace={:08x}",
            s.start.to_string(),
            s.end.to_string(),
            s.kind.name(),
            s.label,
            s.actor.index(),
            s.trace as u32,
        );
    }

    let breakdowns = analyze(&spans);
    let totals = aggregate(&breakdowns);
    println!(
        "\nper-phase attribution over {} requests (µs):",
        totals.requests
    );
    let us = |ns: u64| ns as f64 / 1000.0;
    println!("  network  {:8.3}", us(totals.network_ns));
    println!("  control  {:8.3}", us(totals.control_ns));
    println!("  device   {:8.3}", us(totals.device_ns));
    println!("  other    {:8.3}", us(totals.other_ns));
    println!(
        "  total    {:8.3}  (components sum exactly)",
        us(totals.total_ns)
    );
    assert_eq!(
        totals.network_ns + totals.device_ns + totals.control_ns + totals.other_ns,
        totals.total_ns
    );

    let doc = chrome_trace(&spans, |i| {
        tb.sim.actor_name(ActorId::from_raw(i as u32)).to_string()
    });
    std::fs::write("echo_trace.json", format!("{doc}\n")).expect("write trace");
    println!("\nwrote echo_trace.json — open it in https://ui.perfetto.dev");
}
