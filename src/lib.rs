#![warn(missing_docs)]
//! FractOS-rs: a from-scratch reproduction of *"Slashing the Disaggregation
//! Tax in Heterogeneous Data Centers with FractOS"* (EuroSys '22).
//!
//! FractOS is a distributed OS for disaggregated heterogeneous data centers:
//! devices (GPUs, NVMe SSDs) become first-class citizens that invoke each
//! other directly through continuation-based Requests, protected by
//! distributed capabilities with owner-centric immediate revocation.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`sim`] — deterministic discrete-event engine (the testbed substitute);
//! * [`net`] — calibrated fabric model (RoCE / PCIe / SmartNIC) with
//!   traffic accounting;
//! * [`cap`] — capability tables, revocation trees, monitors;
//! * [`core`] — Controllers, Processes, the Table-1 syscall API;
//! * [`devices`] — GPU and NVMe models plus their adaptor Processes;
//! * [`services`] — the storage stack (FS/compose/DAX), the pipeline, and
//!   the face-verification application;
//! * [`baselines`] — rCUDA, NFS, NVMe-oF and star/fast-star comparators;
//! * [`obs`] — causal-span analysis: latency attribution, Chrome-trace
//!   export, machine-readable metrics snapshots.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the system inventory and per-experiment index.

pub use fractos_baselines as baselines;
pub use fractos_cap as cap;
pub use fractos_core as core;
pub use fractos_devices as devices;
pub use fractos_net as net;
pub use fractos_obs as obs;
pub use fractos_services as services;
pub use fractos_sim as sim;
